use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use taxitrace_geo::Point;
use taxitrace_roadnet::synth::SyntheticCity;
use taxitrace_roadnet::{
    dijkstra, CostModel, ElementId, NodeId, RoutePath, SearchState, TrafficElement,
};
use taxitrace_timebase::{study_period_start, Duration, Season, Timestamp};
use taxitrace_weather::WeatherModel;

use crate::corruption::{corrupt_session, CorruptionConfig};
use crate::driver::{season_speed_factor, DriverProfile};
use crate::fuel::FuelModel;
use crate::model::{CustomerTripTruth, PointTruth, RawTrip, RoutePoint, TaxiId, TripId};
use crate::rng::Rng;
use crate::sampler::{Sampler, SamplerConfig};

/// A crowded pedestrian area ("hotspot").
///
/// The paper attributes part of the low-speed pattern to "real movements of
/// people" in crowded areas (its region B, detected via WiFi client counts in
/// Kostakos et al.): pedestrian interference slows traffic regardless of the
/// static map features. Crowd zones model that interference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdZone {
    pub center: Point,
    pub radius_m: f64,
    /// Multiplier on the cruise target inside the zone.
    pub slow_factor: f64,
    /// Probability of a short pedestrian-yield stop per 100 m inside.
    pub micro_stop_per_100m: f64,
}

impl CrowdZone {
    fn contains(&self, p: Point) -> bool {
        p.distance_sq(self.center) <= self.radius_m * self.radius_m
    }
}

/// Paper Table 3 trip-segment counts per taxi, used as default activity.
pub const PAPER_SEGMENTS_PER_TAXI: [f64; 7] =
    [2409.0, 3068.0, 1790.0, 2486.0, 2429.0, 1815.0, 4080.0];

/// Fleet-simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    pub seed: u64,
    /// Target driven legs per taxi over the study year (before scaling).
    pub legs_per_taxi: Vec<f64>,
    /// Volume scale (1.0 = full paper-sized year; tests use ~0.01).
    pub scale: f64,
    /// Calendar days simulated from the study period start (the paper's
    /// 1.10.2012–30.9.2013 year is 365).
    pub days: usize,
    pub sampler: SamplerConfig,
    pub corruption: CorruptionConfig,
    pub fuel: FuelModel,
    /// GPS noise sigma per axis, metres.
    pub gps_noise_m: f64,
    /// Probability a point is a gross GPS outlier (100–400 m off).
    pub p_gps_outlier: f64,
    /// Probability a leg's destination is one of the named O-D roads.
    pub p_od_dest: f64,
    pub crowd_zones: Vec<CrowdZone>,
    /// Integration step, seconds.
    pub step_s: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            seed: 2012,
            legs_per_taxi: PAPER_SEGMENTS_PER_TAXI.to_vec(),
            scale: 1.0,
            days: 365,
            sampler: SamplerConfig::default(),
            corruption: CorruptionConfig::default(),
            fuel: FuelModel::default(),
            gps_noise_m: 4.0,
            p_gps_outlier: 0.002,
            p_od_dest: 0.30,
            crowd_zones: vec![
                // Market square / city centre: touches every through route.
                CrowdZone {
                    center: Point::new(-60.0, 60.0),
                    radius_m: 260.0,
                    slow_factor: 0.62,
                    micro_stop_per_100m: 0.30,
                },
                // The paper's "area B": a crowded zone on the east leg of
                // the T–S corridor (T-S/S-T routes pass it, T-L/L-T do
                // not) — this is what makes the Table 4 low-speed shares
                // differ while light counts stay similar.
                CrowdZone {
                    center: Point::new(560.0, -60.0),
                    radius_m: 500.0,
                    slow_factor: 0.30,
                    micro_stop_per_100m: 1.0,
                },
            ],
            step_s: 1.0,
        }
    }
}

impl FleetConfig {
    /// A small configuration for unit tests (2 taxis, ~30 legs each).
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            legs_per_taxi: vec![2500.0, 2500.0],
            scale: 0.012,
            ..Self::default()
        }
    }

    /// Checks the invariants [`simulate_fleet`] relies on: a non-empty
    /// fleet, a finite positive scale, and a fleet narrow enough that
    /// 1-based [`TaxiId`]s fit their `u16` representation.
    pub fn validate(&self) -> Result<(), String> {
        if self.legs_per_taxi.is_empty() {
            return Err("fleet must have at least one taxi".into());
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(format!("scale {} must be finite and positive", self.scale));
        }
        if self.legs_per_taxi.len() > u16::MAX as usize {
            return Err(format!(
                "fleet of {} taxis exceeds the {} TaxiId can address",
                self.legs_per_taxi.len(),
                u16::MAX
            ));
        }
        Ok(())
    }
}

/// The simulated fleet's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetData {
    pub sessions: Vec<RawTrip>,
    /// Number of (taxi, day) work units the simulation was sharded into
    /// (reported as the `exec.shard_units` metric by the pipeline).
    #[serde(default)]
    pub shard_count: usize,
}

impl FleetData {
    /// Total route points across sessions.
    pub fn total_points(&self) -> usize {
        self.sessions.iter().map(|s| s.points.len()).sum()
    }

    /// Total true driven legs across sessions.
    pub fn total_legs(&self) -> usize {
        self.sessions.iter().map(|s| s.truth_trips.len()).sum()
    }

    /// Sessions of one taxi.
    pub fn of_taxi(&self, taxi: TaxiId) -> impl Iterator<Item = &RawTrip> + '_ {
        self.sessions.iter().filter(move |s| s.taxi == taxi)
    }
}

/// Simulates the whole fleet over the study year.
///
/// The work list is sharded *below* the taxi level into (taxi, day) units:
/// a cheap sequential planner pass derives each taxi's driver profile and
/// per-day leg allocation from the per-taxi stream
/// `Rng::new(seed).fork(taxi)`, then every day unit simulates under its own
/// counter-derived stream `Rng::new(seed).fork(taxi).fork(day)` — derived,
/// not threaded, so no unit depends on another unit's draws. With ~365
/// units per taxi instead of one long stream each, the work-stealing
/// executor stays saturated at scale 10/100 instead of bottlenecking on a
/// handful of long taxi streams. The result is deterministic in
/// `config.seed` regardless of thread count or scheduling.
pub fn simulate_fleet(
    city: &SyntheticCity,
    weather: &WeatherModel,
    config: &FleetConfig,
) -> FleetData {
    let shards = plan_shards(config);
    let ctx = FleetCtx {
        city,
        weather,
        config,
        elem_index: city.elements.iter().map(|e| (e.id, e)).collect(),
        core_nodes: core_node_weights(city),
        od_names: city
            .od_roads
            .iter()
            .map(|r| (r.outer_node, r.name.as_str()))
            .collect(),
    };
    let (per_shard, _states) =
        taxitrace_exec::par_map_init(&shards, SearchState::new, |search, shard| {
            simulate_day(search, &ctx, shard)
        });
    let mut sessions: Vec<RawTrip> = per_shard.into_iter().flatten().collect();
    sessions.sort_by_key(|s| (s.taxi, s.start_time));
    FleetData { sessions, shard_count: shards.len() }
}

/// One (taxi, day) unit of fleet work, fully planned up front so the unit
/// can run on any worker in any order.
#[derive(Debug, Clone, Copy)]
struct DayShard {
    taxi_idx: usize,
    day: usize,
    /// Customer legs allocated to this day by the planner stream.
    legs: usize,
    /// The taxi's driver profile (sampled once per taxi by the planner).
    profile: DriverProfile,
}

/// Shared read-only fleet context, built once instead of per taxi.
struct FleetCtx<'a> {
    city: &'a SyntheticCity,
    weather: &'a WeatherModel,
    config: &'a FleetConfig,
    elem_index: HashMap<ElementId, &'a TrafficElement>,
    core_nodes: (Vec<NodeId>, Vec<f64>),
    od_names: Vec<(NodeId, &'a str)>,
}

/// Sequential planning pass: samples each taxi's profile and splits its
/// leg target over the study days, consuming only the per-taxi planner
/// stream (`fork(taxi)`). Day simulation never touches this stream, so
/// the plan is independent of execution order.
fn plan_shards(config: &FleetConfig) -> Vec<DayShard> {
    let days = config.days.max(1);
    // Fleets wider than TaxiId are rejected by FleetConfig::validate /
    // StudyConfig::validate before simulation; clamp defensively so a
    // hand-built config cannot alias taxi identities.
    let taxis = config.legs_per_taxi.len().min(u16::MAX as usize);
    let mut shards = Vec::new();
    for taxi_idx in 0..taxis {
        let mut planner = Rng::new(config.seed).fork(taxi_idx as u64 + 1);
        let profile = DriverProfile::sample(&mut planner);
        let target_legs =
            (config.legs_per_taxi[taxi_idx] * config.scale).round().max(1.0) as usize;
        let legs_per_day = target_legs as f64 / days as f64;
        let mut remaining = target_legs;
        for day in 0..days {
            if remaining == 0 {
                break;
            }
            let mut today = legs_per_day.floor() as usize;
            if planner.chance(legs_per_day - today as f64) {
                today += 1;
            }
            let today = today.min(remaining);
            if today == 0 {
                continue;
            }
            remaining -= today;
            shards.push(DayShard { taxi_idx, day, legs: today, profile });
        }
    }
    shards
}

/// Shared per-route lookup: which element spans which arc-offset range.
struct ElemSpan {
    id: ElementId,
    route_start: f64,
    len: f64,
    reversed: bool,
}

/// A speed-relevant event along the route.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// Come to a stop and dwell for the given seconds.
    Stop { dwell_s: f64 },
    /// Pass at no more than the given speed (m/s).
    SlowTo { v_ms: f64 },
}

struct Event {
    offset: f64,
    kind: EventKind,
    done: bool,
}

/// Simulates one (taxi, day) shard under its own derived RNG stream.
///
/// Overnight the taxi is off duty (parks, repositions, shift change), so
/// each day's shift starts from an independently drawn node instead of
/// chaining the previous day's drop-off — which is what makes day units
/// independent work items.
fn simulate_day(
    search: &mut SearchState,
    ctx: &FleetCtx<'_>,
    shard: &DayShard,
) -> Option<RawTrip> {
    let FleetCtx { city, weather, config, .. } = *ctx;
    let mut rng = Rng::new(config.seed)
        .fork(shard.taxi_idx as u64 + 1)
        .fork(shard.day as u64 + 1);
    let taxi = TaxiId(shard.taxi_idx as u16 + 1);
    let profile = shard.profile;

    let day_start = study_period_start() + Duration::from_days(shard.day as i64);
    let session_start =
        day_start + Duration::from_secs(6 * 3600 + (rng.f64() * 4.0 * 3600.0) as i64);
    let weather_day = weather.at(session_start);
    let season = Season::of_timestamp(session_start);
    let speed_env = season_speed_factor(season) * weather_day.condition.speed_factor();

    let trip_id = TripId((shard.taxi_idx as u64 + 1) * 1_000_000 + shard.day as u64);
    let mut sb = SessionBuilder::new(
        trip_id,
        taxi,
        session_start,
        *city.graph.projection(),
        Sampler::new(config.sampler),
        config.fuel,
        config.gps_noise_m,
        config.p_gps_outlier,
    );
    // The shift starts where the previous evening ended: near an arterial
    // O-D stand about as often as customers ask to be taken to one. Drawing
    // this from the day's own stream (instead of chaining the previous
    // day's drop-off) is what keeps day units independent work items.
    let mut current_node = if !city.od_roads.is_empty() && rng.chance(config.p_od_dest) {
        city.od_roads[rng.below(city.od_roads.len())].outer_node
    } else {
        NodeId(rng.below(city.graph.num_nodes()) as u32)
    };

    for _ in 0..shard.legs {
        // Customer boards.
        let boarding = rng.range(20.0, 90.0);
        sb.dwell(&mut rng, boarding, city.graph.node_point(current_node));
        // Choose a destination and route.
        let dest = sample_destination(
            &mut rng,
            city,
            &ctx.core_nodes,
            current_node,
            config.p_od_dest,
        );
        let Some(route) =
            choose_route(search, city, &mut rng, &profile, current_node, dest)
        else {
            continue;
        };
        let od_pair = od_pair_of(&ctx.od_names, current_node, dest);
        drive_leg(
            &mut sb,
            &mut rng,
            city,
            config,
            &profile,
            &ctx.elem_index,
            &route,
            speed_env,
            od_pair,
            current_node,
            dest,
        );
        current_node = dest;
        // Customer leaves; then wait for the next fare.
        let leaving = rng.range(20.0, 60.0);
        sb.dwell(&mut rng, leaving, city.graph.node_point(current_node));
        let gap = rng.exponential(360.0).clamp(45.0, 1400.0);
        if gap > 420.0 && rng.chance(0.25) {
            // Silent relocation to a nearby taxi stand: the device
            // sleeps through a short reposition drive, producing the
            // long-gap-with-movement pattern that Table 2 rules 2 and
            // 4 exist to catch.
            let stand = nearby_node(&mut rng, city, current_node, 1500.0);
            sb.silent_gap(gap);
            current_node = stand;
        } else {
            sb.dwell(&mut rng, gap, city.graph.node_point(current_node));
        }
    }

    if sb.points.is_empty() {
        return None;
    }
    Some(sb.finish(&config.corruption, &mut rng))
}

/// Hotspot-weighted list of candidate customer nodes: demand concentrates
/// towards downtown but covers the whole region (suburban pickups pass the
/// arterials, which is what makes the paper's "filtered and cleaned" funnel
/// stage select a sizeable share of ordinary segments).
fn core_node_weights(city: &SyntheticCity) -> (Vec<NodeId>, Vec<f64>) {
    let mut nodes = Vec::new();
    let mut weights = Vec::new();
    for i in 0..city.graph.num_nodes() as u32 {
        let n = NodeId(i);
        let p = city.graph.node_point(n);
        let d = p.distance(Point::new(0.0, 0.0));
        nodes.push(n);
        weights.push(0.25 + 4.0 * (-d * d / (2.0 * 500.0 * 500.0)).exp());
    }
    (nodes, weights)
}

/// A random node within `max_dist_m` of `from` (falls back to `from`).
fn nearby_node(
    rng: &mut Rng,
    city: &SyntheticCity,
    from: NodeId,
    max_dist_m: f64,
) -> NodeId {
    let origin = city.graph.node_point(from);
    for _ in 0..24 {
        let cand = NodeId(rng.below(city.graph.num_nodes()) as u32);
        if cand != from && city.graph.node_point(cand).distance(origin) <= max_dist_m {
            return cand;
        }
    }
    from
}

fn sample_destination(
    rng: &mut Rng,
    city: &SyntheticCity,
    core_nodes: &(Vec<NodeId>, Vec<f64>),
    current: NodeId,
    p_od_dest: f64,
) -> NodeId {
    for _ in 0..16 {
        let cand = if rng.chance(p_od_dest) {
            city.od_roads[rng.below(city.od_roads.len())].outer_node
        } else {
            core_nodes.0[rng.weighted(&core_nodes.1)]
        };
        if cand != current {
            return cand;
        }
    }
    current
}

fn od_pair_of(
    od_names: &[(NodeId, &str)],
    origin: NodeId,
    dest: NodeId,
) -> Option<(String, String)> {
    let o = od_names.iter().find(|(n, _)| *n == origin)?.1;
    let d = od_names.iter().find(|(n, _)| *n == dest)?.1;
    if o == d {
        None
    } else {
        Some((o.to_string(), d.to_string()))
    }
}

/// Free route choice: per-trip log-normally perturbed travel-time costs,
/// searched goal-directed. The heuristic scale is the tightest admissible
/// one for this trip's weights: the minimum perturbed cost-per-metre over
/// all edges, so `weight(e) >= h_scale * length(e)` holds edge by edge and
/// the weighted A* returns exactly what the blind search would.
fn choose_route(
    search: &mut SearchState,
    city: &SyntheticCity,
    rng: &mut Rng,
    profile: &DriverProfile,
    from: NodeId,
    to: NodeId,
) -> Option<RoutePath> {
    let noise: Vec<f64> = (0..city.graph.num_edges())
        .map(|_| (profile.route_noise * rng.normal()).exp())
        .collect();
    let h_scale = city
        .graph
        .edges()
        .iter()
        .map(|e| CostModel::TravelTime.cost(e) * noise[e.id.0 as usize] / e.length_m)
        .fold(f64::INFINITY, f64::min)
        .max(0.0);
    let h_scale = if h_scale.is_finite() { h_scale } else { 0.0 };
    dijkstra::astar_weighted_with(search, &city.graph, from, to, |e| {
        CostModel::TravelTime.cost(e) * noise[e.id.0 as usize]
    }, h_scale)
}

#[allow(clippy::too_many_arguments)]
fn drive_leg(
    sb: &mut SessionBuilder,
    rng: &mut Rng,
    city: &SyntheticCity,
    config: &FleetConfig,
    profile: &DriverProfile,
    elem_index: &HashMap<ElementId, &TrafficElement>,
    route: &RoutePath,
    speed_env: f64,
    od_pair: Option<(String, String)>,
    origin: NodeId,
    dest: NodeId,
) {
    let Some(line) = route.polyline(&city.graph) else { return };
    let total = line.length();
    if total < 1.0 {
        return;
    }

    // --- Element spans along the route. ---
    let mut spans: Vec<ElemSpan> = Vec::new();
    {
        let mut off = 0.0;
        for (i, &eid) in route.edges.iter().enumerate() {
            let edge = city.graph.edge(eid);
            let fwd = edge.from == route.nodes[i];
            let elems: Vec<ElementId> = if fwd {
                edge.elements.clone()
            } else {
                edge.elements.iter().rev().copied().collect()
            };
            for el in elems {
                let len = elem_index[&el].length();
                spans.push(ElemSpan { id: el, route_start: off, len, reversed: !fwd });
                off += len;
            }
        }
    }

    // --- Speed-limit spans per edge. ---
    let mut limits: Vec<(f64, f64)> = Vec::new(); // (route_end_offset, limit m/s)
    {
        let mut off = 0.0;
        for &eid in &route.edges {
            let edge = city.graph.edge(eid);
            off += edge.length_m;
            limits.push((off, edge.speed_limit_kmh / 3.6));
        }
    }

    // --- Events. ---
    let mut events: Vec<Event> = Vec::new();
    // Junction events at interior path nodes.
    {
        let mut off = 0.0;
        for (i, &eid) in route.edges.iter().enumerate() {
            let edge = city.graph.edge(eid);
            off += edge.length_m;
            if i + 1 >= route.nodes.len() - 1 {
                break;
            }
            let node = route.nodes[i + 1];
            if city.signalized.contains(&node) {
                if rng.chance(profile.light_stop_prob) {
                    events.push(Event {
                        offset: off,
                        kind: EventKind::Stop { dwell_s: profile.light_wait_s(rng) },
                        done: false,
                    });
                } else {
                    events.push(Event {
                        offset: off,
                        kind: EventKind::SlowTo { v_ms: 6.5 },
                        done: false,
                    });
                }
            } else if city.graph.neighbors(node).len() >= 3 && rng.chance(0.55) {
                events.push(Event {
                    offset: off,
                    kind: EventKind::SlowTo { v_ms: 7.5 },
                    done: false,
                });
            }
        }
    }
    // Corner events from geometry.
    {
        let verts = line.vertices();
        let mut off = 0.0;
        for i in 1..verts.len() - 1 {
            off += verts[i - 1].distance(verts[i]);
            let h1 = verts[i - 1].heading_to(verts[i]);
            let h2 = verts[i].heading_to(verts[i + 1]);
            let turn = taxitrace_geo::heading_diff_deg(h1, h2);
            if turn > 60.0 {
                events.push(Event { offset: off, kind: EventKind::SlowTo { v_ms: 4.2 }, done: false });
            } else if turn > 35.0 {
                events.push(Event { offset: off, kind: EventKind::SlowTo { v_ms: 6.0 }, done: false });
            } else if turn > 18.0 {
                events.push(Event { offset: off, kind: EventKind::SlowTo { v_ms: 8.5 }, done: false });
            }
        }
    }
    // Pedestrian-crossing events.
    for span in &spans {
        for obj in city.objects.on_element(span.id) {
            if obj.kind != taxitrace_roadnet::MapObjectKind::PedestrianCrossing {
                continue;
            }
            let local = if span.reversed { span.len - obj.offset_m } else { obj.offset_m };
            if !(0.0..=span.len).contains(&local) {
                continue;
            }
            let off = span.route_start + local;
            if rng.chance(0.12) {
                events.push(Event {
                    offset: off,
                    kind: EventKind::Stop { dwell_s: rng.range(2.0, 9.0) },
                    done: false,
                });
            } else if rng.chance(profile.crossing_yield_prob) {
                events.push(Event { offset: off, kind: EventKind::SlowTo { v_ms: 4.5 }, done: false });
            }
        }
    }
    // Crowd-zone micro-stops: pedestrians stepping onto the street force
    // queue-like stop-and-go (several seconds each, repeatedly).
    for zone in &config.crowd_zones {
        let mut s = 0.0;
        while s < total {
            if zone.contains(line.point_at(s)) && rng.chance(zone.micro_stop_per_100m) {
                events.push(Event {
                    offset: s + rng.range(0.0, 100.0_f64.min(total - s)),
                    kind: EventKind::Stop { dwell_s: rng.range(4.0, 16.0) },
                    done: false,
                });
            }
            s += 100.0;
        }
    }
    events.sort_by(|a, b| a.offset.total_cmp(&b.offset));

    // --- Kinematic integration. ---
    let dt = config.step_s;
    let mut s = 0.0f64;
    let mut v = 0.0f64; // m/s
    let mut limit_idx = 0usize;
    let mut span_idx = 0usize;
    let mut next_event = 0usize;
    let start_seq = sb.next_seq;
    let max_steps = (3.0 * 3600.0 / dt) as usize; // 3 h safety cap
    let decel = profile.decel_ms2;

    for _ in 0..max_steps {
        if s >= total - 0.5 {
            break;
        }
        while limit_idx + 1 < limits.len() && s > limits[limit_idx].0 {
            limit_idx += 1;
        }
        while span_idx + 1 < spans.len()
            && s > spans[span_idx].route_start + spans[span_idx].len
        {
            span_idx += 1;
        }
        while next_event < events.len() && events[next_event].done {
            next_event += 1;
        }

        let pos = line.point_at(s);
        // Cruise target with environment and crowd factors.
        let mut cruise = limits[limit_idx].1 * profile.speed_factor * speed_env;
        for zone in &config.crowd_zones {
            if zone.contains(pos) {
                cruise *= zone.slow_factor;
            }
        }
        // Constraint from events ahead (within braking horizon).
        let mut v_allowed = cruise;
        let horizon = v * v / (2.0 * decel) + 20.0;
        let mut k = next_event;
        while k < events.len() {
            let e = &events[k];
            k += 1;
            if e.done {
                continue;
            }
            let gap = e.offset - s;
            if gap > horizon {
                break;
            }
            let v_target = match e.kind {
                EventKind::Stop { .. } => 0.0,
                EventKind::SlowTo { v_ms } => v_ms,
            };
            let brake_v = (v_target * v_target + 2.0 * decel * gap.max(0.0)).sqrt();
            v_allowed = v_allowed.min(brake_v.max(v_target));
        }
        // Also brake for the route end.
        let end_brake = (2.0 * decel * (total - s).max(0.0)).sqrt();
        v_allowed = v_allowed.min(end_brake);

        // Update speed.
        let v_old = v;
        if v < v_allowed {
            v = (v + profile.accel_ms2 * dt).min(v_allowed);
        } else {
            v = (v - decel * dt).max(v_allowed.min(v));
        }
        let a = (v - v_old) / dt;
        s += v * dt;
        // Re-resolve the element span for the *post-step* position so the
        // recorded ground-truth element matches the emitted coordinates.
        while span_idx + 1 < spans.len()
            && s > spans[span_idx].route_start + spans[span_idx].len
        {
            span_idx += 1;
        }

        sb.advance_time(dt);
        sb.fuel += config.fuel.step_ml(v, a, dt);
        sb.dist_m += v * dt;

        let heading = line.heading_at(s.min(total));
        let elem = spans.get(span_idx).map(|sp| sp.id);
        sb.observe(rng, line.point_at(s.min(total)), v * 3.6, heading, elem);

        // Handle every reached event, not just the frontmost: a single
        // step can overshoot several events, and an unexpired SlowTo in
        // front of an overshot Stop must not block it (that combination
        // would pin the speed to zero forever). Stop events trigger as
        // soon as the vehicle arrives at the stop line; SlowTo events
        // expire once passed.
        let mut total_dwell = 0.0f64;
        let mut k = next_event;
        while k < events.len() && events[k].offset <= s + 2.0 {
            let e = &mut events[k];
            if !e.done {
                match e.kind {
                    EventKind::Stop { dwell_s } => {
                        e.done = true;
                        v = 0.0;
                        total_dwell += dwell_s;
                    }
                    EventKind::SlowTo { .. } => {
                        if s > e.offset + 3.0 {
                            e.done = true;
                        }
                    }
                }
            }
            k += 1;
        }
        if total_dwell > 0.0 {
            sb.dwell_on_route(rng, total_dwell, line.point_at(s.min(total)), heading, elem);
        }
    }
    // Final point at the destination with v = 0.
    let end_elem = spans.last().map(|sp| sp.id);
    sb.force_emit(rng, line.end(), 0.0, line.heading_at(total), end_elem);

    let end_seq = sb.next_seq.saturating_sub(1);
    if end_seq > start_seq {
        sb.truth_trips.push(CustomerTripTruth {
            start_seq,
            end_seq,
            origin,
            destination: dest,
            elements: spans.iter().map(|sp| sp.id).collect(),
            od_pair,
        });
    }
}

/// Builds one session's point stream.
struct SessionBuilder {
    trip_id: TripId,
    taxi: TaxiId,
    start_time: Timestamp,
    time: Timestamp,
    /// Sub-second accumulator so fractional steps keep full precision.
    frac_s: f64,
    projection: taxitrace_geo::LocalProjection,
    sampler: Sampler,
    fuel_model: FuelModel,
    gps_noise_m: f64,
    p_outlier: f64,
    points: Vec<RoutePoint>,
    next_seq: u32,
    fuel: f64,
    dist_m: f64,
    truth_trips: Vec<CustomerTripTruth>,
    /// GPS position freeze: real trackers re-report the last fix while the
    /// vehicle is stationary, so stationary pairs have *exactly* zero
    /// distance — which is what the paper's Table 2 stop rules (0.002 m/s!)
    /// rely on.
    frozen_pos: Option<Point>,
}

impl SessionBuilder {
    #[allow(clippy::too_many_arguments)]
    fn new(
        trip_id: TripId,
        taxi: TaxiId,
        start_time: Timestamp,
        projection: taxitrace_geo::LocalProjection,
        sampler: Sampler,
        fuel_model: FuelModel,
        gps_noise_m: f64,
        p_outlier: f64,
    ) -> Self {
        Self {
            trip_id,
            taxi,
            start_time,
            time: start_time,
            frac_s: 0.0,
            projection,
            sampler,
            fuel_model,
            gps_noise_m,
            p_outlier,
            points: Vec::new(),
            next_seq: 0,
            fuel: 0.0,
            dist_m: 0.0,
            truth_trips: Vec::new(),
            frozen_pos: None,
        }
    }

    fn advance_time(&mut self, dt: f64) {
        self.frac_s += dt;
        let whole = self.frac_s.floor();
        self.frac_s -= whole;
        self.time += Duration::from_secs(whole as i64);
    }

    /// Feeds an observation to the device sampler; emits a point if the
    /// sampler fires.
    fn observe(
        &mut self,
        rng: &mut Rng,
        true_pos: Point,
        speed_kmh: f64,
        heading_deg: f64,
        element: Option<ElementId>,
    ) {
        let measured = self.measure(rng, true_pos, speed_kmh);
        if self.sampler.observe(self.time, measured, speed_kmh, heading_deg) {
            self.emit(measured, speed_kmh, heading_deg, element);
        }
    }

    /// Emits a point unconditionally (leg endpoints).
    fn force_emit(
        &mut self,
        rng: &mut Rng,
        true_pos: Point,
        speed_kmh: f64,
        heading_deg: f64,
        element: Option<ElementId>,
    ) {
        let measured = self.measure(rng, true_pos, speed_kmh);
        // Keep the sampler's state in sync.
        let _ = self.sampler.observe(self.time, measured, speed_kmh, heading_deg);
        self.emit(measured, speed_kmh, heading_deg, element);
    }

    /// Measured position: frozen while (nearly) stationary, noisy otherwise.
    fn measure(&mut self, rng: &mut Rng, p: Point, speed_kmh: f64) -> Point {
        if speed_kmh < 1.0 {
            if let Some(f) = self.frozen_pos {
                return f;
            }
            let f = self.noisy(rng, p);
            self.frozen_pos = Some(f);
            return f;
        }
        if speed_kmh > 2.0 {
            self.frozen_pos = None;
        } else if let Some(f) = self.frozen_pos {
            return f;
        }
        self.noisy(rng, p)
    }

    fn noisy(&mut self, rng: &mut Rng, p: Point) -> Point {
        if rng.chance(self.p_outlier) {
            let r = rng.range(100.0, 400.0);
            let theta = rng.range(0.0, std::f64::consts::TAU);
            Point::new(p.x + r * theta.cos(), p.y + r * theta.sin())
        } else {
            Point::new(
                p.x + rng.normal() * self.gps_noise_m,
                p.y + rng.normal() * self.gps_noise_m,
            )
        }
    }

    fn emit(&mut self, pos: Point, speed_kmh: f64, heading_deg: f64, element: Option<ElementId>) {
        self.points.push(RoutePoint {
            point_id: 0, // assigned by corruption/renumbering
            trip_id: self.trip_id,
            taxi: self.taxi,
            geo: self.projection.unproject(pos),
            pos,
            timestamp: self.time,
            speed_kmh,
            heading_deg,
            fuel_ml: self.fuel,
            truth: PointTruth { seq: self.next_seq, element },
        });
        self.next_seq += 1;
    }

    /// A fully silent time gap (device asleep while repositioning): time
    /// and idle fuel advance, nothing is emitted, and the position freeze
    /// is cleared because the vehicle moved.
    fn silent_gap(&mut self, dur_s: f64) {
        self.advance_time(dur_s);
        self.fuel += self.fuel_model.step_ml(2.0, 0.0, dur_s);
        self.frozen_pos = None;
        self.sampler.reset();
    }

    /// Stationary dwell off-route (pickups, fare gaps).
    ///
    /// During long fare gaps the device occasionally power-saves and emits
    /// nothing until movement resumes — producing the long silent gaps that
    /// the paper's Table 2 rules 2 and 4 detect.
    fn dwell(&mut self, rng: &mut Rng, dur_s: f64, at: Point) {
        if dur_s > 420.0 && rng.chance(0.3) {
            // Device sleeps: one observation at dwell start, then silence.
            self.observe(rng, at, 0.0, 0.0, None);
            self.advance_time(dur_s);
            self.fuel += self.fuel_model.step_ml(0.0, 0.0, dur_s);
            return;
        }
        self.dwell_on_route(rng, dur_s, at, 0.0, None);
    }

    /// Stationary dwell keeping the current route context.
    fn dwell_on_route(
        &mut self,
        rng: &mut Rng,
        dur_s: f64,
        at: Point,
        heading: f64,
        element: Option<ElementId>,
    ) {
        let mut remaining = dur_s;
        // Observe every 10 s of dwell (the sampler decides what to store).
        while remaining > 0.0 {
            let step = remaining.min(10.0);
            self.advance_time(step);
            self.fuel += self.fuel_model.step_ml(0.0, 0.0, step);
            remaining -= step;
            self.observe(rng, at, 0.0, heading, element);
        }
    }

    fn finish(self, corruption: &CorruptionConfig, rng: &mut Rng) -> RawTrip {
        let end_time = self.time;
        let (points, _) = corrupt_session(corruption, rng, self.points);
        RawTrip {
            id: self.trip_id,
            taxi: self.taxi,
            start_time: self.start_time,
            end_time,
            points,
            total_time: end_time - self.start_time,
            total_distance_m: self.dist_m,
            total_fuel_ml: self.fuel,
            truth_trips: self.truth_trips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_roadnet::synth::{generate, OuluConfig};

    fn small_fleet() -> (SyntheticCity, FleetData) {
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        let data = simulate_fleet(&city, &weather, &FleetConfig::tiny(7));
        (city, data)
    }

    #[test]
    fn fleet_produces_sessions_and_points() {
        let (_, data) = small_fleet();
        assert!(!data.sessions.is_empty());
        assert!(data.total_points() > 200, "{}", data.total_points());
        assert!(data.total_legs() >= 40, "{}", data.total_legs());
    }

    #[test]
    fn deterministic_in_seed() {
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        let a = simulate_fleet(&city, &weather, &FleetConfig::tiny(7));
        let b = simulate_fleet(&city, &weather, &FleetConfig::tiny(7));
        assert_eq!(a.sessions.len(), b.sessions.len());
        assert_eq!(a.total_points(), b.total_points());
        let (pa, pb) = (&a.sessions[0].points, &b.sessions[0].points);
        assert_eq!(pa, pb);
    }

    #[test]
    fn shards_split_below_the_taxi_level() {
        let cfg = FleetConfig::tiny(7);
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        let data = simulate_fleet(&city, &weather, &cfg);
        // ~30 active days per taxi means far more work units than taxis.
        assert!(
            data.shard_count > 10 * cfg.legs_per_taxi.len(),
            "shard_count {}",
            data.shard_count
        );
        // The planner allocates exactly the scaled leg target per taxi.
        let target: usize = cfg
            .legs_per_taxi
            .iter()
            .map(|&l| (l * cfg.scale).round().max(1.0) as usize)
            .sum();
        let planned: usize = data.sessions.iter().map(|s| s.truth_trips.len()).sum();
        // Some legs abort before emitting (unroutable pairs), so planned
        // truth legs can fall slightly short of the target, never above.
        assert!(planned <= target, "planned {planned} target {target}");
        assert!(planned * 10 >= target * 9, "planned {planned} target {target}");
    }

    #[test]
    fn fleet_config_validates_width_and_scale() {
        assert!(FleetConfig::tiny(1).validate().is_ok());
        let mut cfg = FleetConfig::tiny(1);
        cfg.legs_per_taxi.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = FleetConfig::tiny(1);
        cfg.scale = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = FleetConfig::tiny(1);
        cfg.legs_per_taxi = vec![1.0; u16::MAX as usize + 1];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn different_seed_differs() {
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        let a = simulate_fleet(&city, &weather, &FleetConfig::tiny(7));
        let b = simulate_fleet(&city, &weather, &FleetConfig::tiny(8));
        assert_ne!(a.total_points(), b.total_points());
    }

    #[test]
    fn speeds_and_times_sane() {
        let (_, data) = small_fleet();
        for s in &data.sessions {
            assert!(s.end_time > s.start_time);
            for p in &s.points {
                assert!((0.0..=130.0).contains(&p.speed_kmh), "speed {}", p.speed_kmh);
                // Clock-glitch injection may push a timestamp slightly
                // past the session bounds; allow that margin.
                assert!(
                    p.timestamp >= s.start_time - Duration::from_secs(120)
                        && p.timestamp <= s.end_time + Duration::from_secs(120)
                );
                assert!(p.fuel_ml >= 0.0);
            }
        }
    }

    #[test]
    fn points_ordered_by_arrival_id() {
        let (_, data) = small_fleet();
        for s in &data.sessions {
            for (i, p) in s.points.iter().enumerate() {
                assert_eq!(p.point_id, i as u64);
            }
        }
    }

    #[test]
    fn truth_legs_have_elements_and_bounds() {
        let (_, data) = small_fleet();
        for s in &data.sessions {
            for leg in &s.truth_trips {
                assert!(leg.end_seq > leg.start_seq);
                assert!(!leg.elements.is_empty());
                assert!((leg.end_seq as usize) < s.points.len() + 5);
            }
        }
    }

    #[test]
    fn some_od_to_od_legs_exist() {
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        let mut cfg = FleetConfig::tiny(9);
        cfg.scale = 0.05;
        cfg.p_od_dest = 0.5; // force plenty of OD traffic for the test
        let data = simulate_fleet(&city, &weather, &cfg);
        let od_legs: usize = data
            .sessions
            .iter()
            .flat_map(|s| &s.truth_trips)
            .filter(|l| l.od_pair.is_some())
            .count();
        assert!(od_legs > 3, "{od_legs}");
    }

    #[test]
    fn fuel_magnitude_matches_table4_scale() {
        let (_, data) = small_fleet();
        // Average fuel per leg-kilometre should be in the urban range.
        let mut fuel_per_km = Vec::new();
        for s in &data.sessions {
            if s.total_distance_m > 1000.0 {
                fuel_per_km.push(s.total_fuel_ml / (s.total_distance_m / 1000.0));
            }
        }
        assert!(!fuel_per_km.is_empty());
        let mean = fuel_per_km.iter().sum::<f64>() / fuel_per_km.len() as f64;
        // Sessions include idle dwells, so per-km figures run higher than
        // pure driving; accept a broad urban band.
        assert!((60.0..400.0).contains(&mean), "mean fuel/km {mean}");
    }

    #[test]
    fn session_distance_close_to_truth_leg_geometry() {
        let (city, data) = small_fleet();
        let elem_len: HashMap<ElementId, f64> =
            city.elements.iter().map(|e| (e.id, e.length())).collect();
        for s in data.sessions.iter().take(5) {
            let truth_dist: f64 = s
                .truth_trips
                .iter()
                .flat_map(|l| &l.elements)
                .map(|e| elem_len[e])
                .sum();
            if truth_dist > 0.0 {
                let ratio = s.total_distance_m / truth_dist;
                assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
            }
        }
    }
}
