//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! taxitrace-lint [--deny] [--format human|json] [--root DIR] [--quiet]
//! ```
//!
//! * `--deny`    exit non-zero if any finding survives the allow filters,
//!   or if the allowlist carries stale (unused) entries
//! * `--format`  `human` (default) or `json` (stable, golden-file tested)
//! * `--root`    workspace root; default: walk up from the current dir
//! * `--quiet`   suppress the scan summary on stderr

use std::path::PathBuf;
use std::process::ExitCode;

use taxitrace_lint::{diag, find_workspace_root, lint_workspace};

struct Options {
    deny: bool,
    json: bool,
    quiet: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { deny: false, json: false, quiet: false, root: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--quiet" => opts.quiet = true,
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("human") => opts.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root expects a directory".into()),
            },
            "--help" | "-h" => {
                println!(
                    "taxitrace-lint [--deny] [--format human|json] [--root DIR] [--quiet]\n\
                     Static-analysis gate: determinism, panic-freedom, unsafe audit,\n\
                     metrics-schema drift, atomics audit, lock discipline, workspace\n\
                     hygiene. --deny also fails on stale allowlist entries."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("taxitrace-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = opts.root.clone().or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("taxitrace-lint: no workspace root found (try --root)");
        return ExitCode::from(2);
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", diag::to_json(&report.findings));
    } else {
        print!("{}", diag::to_human(&report.findings));
    }
    if !opts.quiet {
        eprintln!(
            "taxitrace-lint: scanned {} files, {} finding(s), {} suppressed",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
    }
    let severity = if opts.deny { "error" } else { "warning" };
    for stale in &report.unused_allows {
        eprintln!(
            "taxitrace-lint: {severity}: unused allowlist entry `{stale}` — prune it \
             from crates/lint/allowlist.txt"
        );
    }
    if opts.deny && (!report.findings.is_empty() || !report.unused_allows.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
