//! The two suppression mechanisms.
//!
//! * **In-source**: a comment `lint:allow(<rule-id>)` on the offending line
//!   or on the line directly above suppresses that rule there. Convention:
//!   follow it with a colon and a justification, e.g.
//!   `// lint:allow(panic-free-library): cum is never empty by construction`.
//! * **Committed allowlist**: `crates/lint/allowlist.txt` lists
//!   `<rule-id> <workspace-relative-path>` pairs that suppress a rule for a
//!   whole legacy file. Prefer in-source allows for new code — the
//!   allowlist exists so the gate could be turned on without rewriting
//!   every historical site at once.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Parsed allowlist file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>, // (rule, rel path)
}

impl Allowlist {
    /// Parses the allowlist format: one `rule path` pair per line, blank
    /// lines and `#` comments ignored. Unparseable lines are reported as
    /// errors so typos cannot silently widen the gate.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), None) => {
                    entries.push((rule.to_string(), path.to_string()));
                }
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `<rule-id> <path>`, got {line:?}",
                        i + 1
                    ));
                }
            }
        }
        Ok(Allowlist { entries })
    }

    /// Whether the allowlist suppresses this finding.
    pub fn allows(&self, d: &Diagnostic) -> bool {
        self.entries.iter().any(|(rule, path)| rule == d.rule && path == &d.file)
    }

    /// Entries that never matched a finding (stale — worth pruning).
    pub fn unused(&self, suppressed: &[Diagnostic]) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .filter(|(rule, path)| {
                !suppressed.iter().any(|d| d.rule == *rule && d.file == *path)
            })
            .map(|(rule, path)| (rule.as_str(), path.as_str()))
            .collect()
    }
}

/// Whether an in-source `lint:allow(<rule>)` comment covers 1-based `line`.
pub fn inline_allowed(file: &SourceFile, line: usize, rule: &str) -> bool {
    let needle = format!("lint:allow({rule})");
    let has = |idx: usize| file.comments.get(idx).is_some_and(|c| c.contains(&needle));
    // A comment-only line (no code) above covers the next line; a trailing
    // comment covers only its own line.
    let comment_only = |idx: usize| {
        file.code.get(idx).is_some_and(|c| c.trim().is_empty())
    };
    line >= 1 && (has(line - 1) || (line >= 2 && has(line - 2) && comment_only(line - 2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse("# legacy\npanic-free-library crates/x/src/lib.rs\n\n")
            .expect("parses");
        let d = Diagnostic::new("crates/x/src/lib.rs", 3, "panic-free-library", "m", "s");
        assert!(a.allows(&d));
        let other = Diagnostic::new("crates/y/src/lib.rs", 3, "panic-free-library", "m", "s");
        assert!(!a.allows(&other));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("just-one-token").is_err());
        assert!(Allowlist::parse("a b c").is_err());
    }

    #[test]
    fn inline_allow_same_and_previous_line() {
        let src = "// lint:allow(determinism): seeded\nlet t = now();\nlet u = now(); // lint:allow(determinism)\nlet v = now();";
        let f = SourceFile::scan("t.rs", src);
        assert!(inline_allowed(&f, 2, "determinism"));
        assert!(inline_allowed(&f, 3, "determinism"));
        assert!(!inline_allowed(&f, 4, "determinism"));
        assert!(!inline_allowed(&f, 2, "panic-free-library"));
    }
}
