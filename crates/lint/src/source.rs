//! A small comment/string/raw-string-aware scanner for Rust source.
//!
//! The lint rules do not need a full parser: every check is a lexical
//! pattern over *code* text, so the one thing that must be exact is
//! separating code from comments, string literals, char literals and raw
//! strings (where the same byte sequences are inert). The scanner produces,
//! per line:
//!
//! * a **masked code line** — the raw line with every comment and literal
//!   character replaced by a space, so column positions are preserved and
//!   substring checks can never match inside a literal;
//! * the **comment text** of the line (used by the `// SAFETY:` audit and
//!   the `lint:allow` escape hatch);
//! * every **string literal** with its column and unescaped-enough value
//!   (used by the metrics-name rule).
//!
//! It also brace-matches `#[cfg(test)]` items so rules can skip inline test
//! modules, which are allowed to unwrap freely.

/// One string literal occurrence in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLit {
    /// 1-based line number of the opening quote.
    pub line: usize,
    /// 0-based char column of the opening quote. The masked code channel
    /// replaces every source char with exactly one ASCII char, so this is
    /// also a byte index into the masked line.
    pub col: usize,
    /// Literal contents with simple escapes (`\\`, `\"`, `\n`, `\t`)
    /// resolved; other escapes are kept verbatim.
    pub value: String,
}

/// A scanned Rust source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Raw text split into lines (no terminators).
    pub raw: Vec<String>,
    /// Masked code: comments and literal bodies blanked to spaces.
    pub code: Vec<String>,
    /// Comment text per line (block and line comments concatenated).
    pub comments: Vec<String>,
    /// Every string literal in the file, in source order.
    pub strings: Vec<StringLit>,
    /// `true` for lines inside a `#[cfg(test)]` item (inclusive).
    pub in_test: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

impl SourceFile {
    /// Scans `text` into per-line code/comment/literal channels.
    pub fn scan(rel: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let mut code = Vec::with_capacity(raw.len());
        let mut comments = Vec::with_capacity(raw.len());
        let mut strings = Vec::new();
        let mut mode = Mode::Code;
        let mut lit = String::new();
        let mut lit_start: (usize, usize) = (0, 0);

        for (li, line) in raw.iter().enumerate() {
            let bytes: Vec<char> = line.chars().collect();
            let mut code_line = String::with_capacity(line.len());
            let mut comment_line = String::new();
            // A line comment never crosses a newline.
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            let mut i = 0usize;
            while i < bytes.len() {
                let c = bytes[i];
                let next = bytes.get(i + 1).copied();
                match mode {
                    Mode::Code => {
                        if c == '/' && next == Some('/') {
                            mode = Mode::LineComment;
                            comment_line.push_str(&line_suffix(&bytes, i + 2));
                            // Blank the rest of the line in the code channel.
                            for _ in i..bytes.len() {
                                code_line.push(' ');
                            }
                            break;
                        } else if c == '/' && next == Some('*') {
                            mode = Mode::BlockComment(1);
                            code_line.push(' ');
                            code_line.push(' ');
                            i += 2;
                        } else if c == '"' {
                            mode = Mode::Str { raw_hashes: None };
                            lit.clear();
                            lit_start = (li + 1, i);
                            code_line.push(' ');
                            i += 1;
                        } else if c == 'r' && is_raw_string_start(&bytes, i) {
                            let hashes = count_hashes(&bytes, i + 1);
                            mode = Mode::Str { raw_hashes: Some(hashes) };
                            lit.clear();
                            lit_start = (li + 1, i);
                            for _ in 0..(2 + hashes as usize) {
                                code_line.push(' ');
                            }
                            i += 2 + hashes as usize;
                        } else if c == 'b' && next == Some('"') {
                            mode = Mode::Str { raw_hashes: None };
                            lit.clear();
                            lit_start = (li + 1, i);
                            code_line.push(' ');
                            code_line.push(' ');
                            i += 2;
                        } else if c == '\'' {
                            // Char literal vs lifetime.
                            if let Some(len) = char_literal_len(&bytes, i) {
                                for _ in 0..len {
                                    code_line.push(' ');
                                }
                                i += len;
                            } else {
                                code_line.push(c);
                                i += 1;
                            }
                        } else {
                            code_line.push(c);
                            i += 1;
                        }
                    }
                    Mode::LineComment => unreachable_line_comment(&mut code_line, &mut i, &bytes),
                    Mode::BlockComment(depth) => {
                        if c == '*' && next == Some('/') {
                            mode = if depth > 1 {
                                Mode::BlockComment(depth - 1)
                            } else {
                                Mode::Code
                            };
                            code_line.push(' ');
                            code_line.push(' ');
                            i += 2;
                        } else if c == '/' && next == Some('*') {
                            mode = Mode::BlockComment(depth + 1);
                            comment_line.push(' ');
                            code_line.push(' ');
                            code_line.push(' ');
                            i += 2;
                        } else {
                            comment_line.push(c);
                            code_line.push(' ');
                            i += 1;
                        }
                    }
                    Mode::Str { raw_hashes: None } => {
                        if c == '\\' {
                            match next {
                                Some('"') => lit.push('"'),
                                Some('\\') => lit.push('\\'),
                                Some('n') => lit.push('\n'),
                                Some('t') => lit.push('\t'),
                                Some(other) => {
                                    lit.push('\\');
                                    lit.push(other);
                                }
                                None => lit.push('\\'),
                            }
                            code_line.push(' ');
                            if next.is_some() {
                                code_line.push(' ');
                            }
                            i += 2;
                        } else if c == '"' {
                            strings.push(StringLit {
                                line: lit_start.0,
                                col: lit_start.1,
                                value: std::mem::take(&mut lit),
                            });
                            mode = Mode::Code;
                            code_line.push(' ');
                            i += 1;
                        } else {
                            lit.push(c);
                            code_line.push(' ');
                            i += 1;
                        }
                    }
                    Mode::Str { raw_hashes: Some(h) } => {
                        if c == '"' && hashes_follow(&bytes, i + 1, h) {
                            strings.push(StringLit {
                                line: lit_start.0,
                                col: lit_start.1,
                                value: std::mem::take(&mut lit),
                            });
                            mode = Mode::Code;
                            for _ in 0..(1 + h as usize) {
                                code_line.push(' ');
                            }
                            i += 1 + h as usize;
                        } else {
                            lit.push(c);
                            code_line.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            // Multiline string literals keep accumulating across lines.
            if matches!(mode, Mode::Str { .. }) {
                lit.push('\n');
            }
            code.push(code_line);
            comments.push(comment_line);
        }

        let in_test = mark_test_regions(&code);
        SourceFile { rel: rel.to_string(), raw, code, comments, strings, in_test }
    }

    /// String literals that start on the given 1-based line.
    pub fn strings_on_line(&self, line: usize) -> impl Iterator<Item = &StringLit> {
        self.strings.iter().filter(move |s| s.line == line)
    }
}

fn line_suffix(bytes: &[char], from: usize) -> String {
    bytes[from.min(bytes.len())..].iter().collect()
}

// The per-line loop resets LineComment before entering, so this state can
// only be observed if the reset is removed; blank the rest of the line.
fn unreachable_line_comment(code_line: &mut String, i: &mut usize, bytes: &[char]) {
    for _ in *i..bytes.len() {
        code_line.push(' ');
    }
    *i = bytes.len();
}

/// `r"`, `r#"`, `r##"`, … (also after `b`: handled because `b` is consumed
/// as ordinary code and the `r` still starts the raw string).
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Not part of an identifier like `parser"` — require the char before
    // `r` to be a non-identifier char (or the `b` of a `br"…"` literal).
    if i > 0 {
        let prev = bytes[i - 1];
        let byte_prefix = prev == 'b'
            && (i < 2 || !(bytes[i - 2].is_alphanumeric() || bytes[i - 2] == '_'));
        if (prev.is_alphanumeric() || prev == '_') && !byte_prefix {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn count_hashes(bytes: &[char], from: usize) -> u32 {
    let mut n = 0;
    while bytes.get(from + n as usize) == Some(&'#') {
        n += 1;
    }
    n
}

fn hashes_follow(bytes: &[char], from: usize, h: u32) -> bool {
    (0..h as usize).all(|k| bytes.get(from + k) == Some(&'#'))
}

/// Length in chars of a char literal starting at `i` (which holds `'`), or
/// `None` if this apostrophe starts a lifetime.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote.
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != '\'' {
                j += 1;
            }
            (j < bytes.len()).then_some(j - i + 1)
        }
        Some(_) if bytes.get(i + 2) == Some(&'\'') => Some(3),
        _ => None, // lifetime such as `'a` or `'static`
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item by brace matching on
/// the masked code channel.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut li = 0usize;
    while li < code.len() {
        let l = &code[li];
        let is_test_attr = l.contains("cfg(test)")
            || l.contains("cfg(all(test")
            || l.contains("cfg(any(test");
        if !is_test_attr {
            li += 1;
            continue;
        }
        // Find the opening brace of the annotated item and match it.
        let mut depth = 0i64;
        let mut opened = false;
        let mut lj = li;
        'outer: while lj < code.len() {
            for c in code[lj].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => {
                        // `#[cfg(test)] mod foo;` — single line item.
                        break 'outer;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            lj += 1;
        }
        let end = lj.min(code.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(li) {
            *flag = true;
        }
        li = end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments() {
        let f = SourceFile::scan("t.rs", "let x = 1; // unwrap() here\nlet y = 2;");
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.comments[0].contains("unwrap() here"));
        assert!(f.code[1].contains("let y = 2;"));
    }

    #[test]
    fn masks_block_comments_nested() {
        let f = SourceFile::scan("t.rs", "a /* x /* y */ z */ b");
        assert_eq!(f.code[0].trim_start().chars().next(), Some('a'));
        assert!(!f.code[0].contains('x'));
        assert!(f.code[0].ends_with('b'));
    }

    #[test]
    fn extracts_string_literals() {
        let f = SourceFile::scan("t.rs", "reg.counter(\"match.traces\").add(1);");
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].value, "match.traces");
        assert!(!f.code[0].contains("match.traces"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = SourceFile::scan("t.rs", "let s = r#\"a \"quoted\" b\"#; let t = \"x\\\"y\";");
        assert_eq!(f.strings[0].value, "a \"quoted\" b");
        assert_eq!(f.strings[1].value, "x\"y");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let f = SourceFile::scan("t.rs", "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }");
        // The quote inside the char literal must not open a string.
        assert!(f.strings.is_empty());
        assert!(f.code[0].contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn multiline_string() {
        let f = SourceFile::scan("t.rs", "let s = \"line1\nline2\";\nlet x = 1;");
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].value, "line1\nline2");
        assert!(f.code[2].contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }
}
