//! Structured diagnostics and their human/JSON renderings.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Stable rule identifier, e.g. `panic-free-library`.
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    pub fn new(
        file: &str,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
        snippet: &str,
    ) -> Diagnostic {
        let mut snippet = snippet.trim().to_string();
        if snippet.chars().count() > 120 {
            snippet = snippet.chars().take(117).collect::<String>() + "...";
        }
        Diagnostic { file: file.to_string(), line, rule, message: message.into(), snippet }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)?;
        write!(f, "    {}", self.snippet)
    }
}

/// Renders findings as versioned, deterministic JSON (sorted by
/// file/line/rule; pure function of the findings).
pub fn to_json(findings: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = findings.iter().collect();
    sorted.sort();
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
        out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
        out.push_str(&format!("\"snippet\": {}", json_str(&d.snippet)));
        out.push('}');
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders findings for terminals, grouped in sorted order.
pub fn to_human(findings: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = findings.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for d in &sorted {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if sorted.is_empty() {
        out.push_str("taxitrace-lint: no findings\n");
    } else {
        out.push_str(&format!("taxitrace-lint: {} finding(s)\n", sorted.len()));
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_sorted_and_escaped() {
        let d1 = Diagnostic::new("b.rs", 2, "determinism", "x", "code");
        let d2 = Diagnostic::new("a.rs", 9, "determinism", "quote \" here", "c\\d");
        let json = to_json(&[d1, d2]);
        let a = json.find("a.rs").expect("a.rs present");
        let b = json.find("b.rs").expect("b.rs present");
        assert!(a < b, "findings sorted by file");
        assert!(json.contains("quote \\\" here"));
        assert!(json.contains("c\\\\d"));
    }

    #[test]
    fn empty_findings_render() {
        assert!(to_json(&[]).contains("\"findings\": []"));
        assert!(to_human(&[]).contains("no findings"));
    }

    #[test]
    fn long_snippets_truncated() {
        let d = Diagnostic::new("a.rs", 1, "determinism", "m", &"x".repeat(300));
        assert!(d.snippet.chars().count() <= 120);
        assert!(d.snippet.ends_with("..."));
    }
}
