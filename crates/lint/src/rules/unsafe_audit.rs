//! `unsafe-audit`: every `unsafe` keyword must be justified by a
//! `// SAFETY:` comment on the same line or within the three lines above.
//! The workspace is currently 100% safe code (most crates carry
//! `#![forbid(unsafe_code)]`); this rule keeps any future opt-in audited
//! from day one, tests included.

use super::{find_word, FileCtx, Rule};
use crate::diag::Diagnostic;

#[derive(Debug)]
pub struct UnsafeAudit;

/// How many lines above an `unsafe` keyword may carry the SAFETY comment.
const LOOKBACK: usize = 3;

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let f = ctx.file;
        let mut out = Vec::new();
        for (i, code) in f.code.iter().enumerate() {
            if find_word(code, "unsafe").is_empty() {
                continue;
            }
            // `#![forbid(unsafe_code)]` and the like mention unsafe only
            // inside the attribute word `unsafe_code`, which word-bounding
            // already rejects.
            let documented = (i.saturating_sub(LOOKBACK)..=i)
                .any(|j| f.comments[j].contains("SAFETY:"));
            if !documented {
                out.push(Diagnostic::new(
                    &f.rel,
                    i + 1,
                    self.id(),
                    format!(
                        "`unsafe` without a `// SAFETY:` comment within {LOOKBACK} \
                         lines: state the invariant that makes this sound"
                    ),
                    &f.raw[i],
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        UnsafeAudit.check(&FileCtx { file: &f, krate: "x", kind: FileKind::Lib })
    }

    #[test]
    fn flags_undocumented_unsafe() {
        assert_eq!(check("let p = unsafe { *ptr };").len(), 1);
    }

    #[test]
    fn safety_comment_satisfies() {
        assert!(check("// SAFETY: ptr is valid for reads, checked above\nlet p = unsafe { *ptr };").is_empty());
        assert!(check("let p = unsafe { *ptr }; // SAFETY: aligned").is_empty());
    }

    #[test]
    fn lookback_is_bounded() {
        let src = "// SAFETY: too far away\n\n\n\n\nlet p = unsafe { *ptr };";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn forbid_attribute_not_flagged() {
        assert!(check("#![forbid(unsafe_code)]").is_empty());
    }
}
