//! `determinism`: the pipeline's output must be a pure function of its
//! configuration. `repro --scale 1.0` is byte-compared against a golden
//! file (tests/determinism.rs); silent nondeterminism would invalidate the
//! downstream statistics the same way unmodelled matching noise does in
//! the map-matching literature. Three families of violations:
//!
//! * **Ambient clocks** — `SystemTime::now` / `Instant::now` outside the
//!   observability (`obs`) and executor (`exec`) timing spans and outside
//!   binaries. Timing belongs in obs spans, which are excluded from
//!   deterministic output.
//! * **Ambient randomness** — `thread_rng`, `rand::random`, `RandomState`:
//!   all randomness must flow from the seeded `taxitrace_traces::rng`.
//! * **Hash-order iteration** — iterating a `std::collections::HashMap` /
//!   `HashSet` yields platform/DoS-seed-dependent order; if the items feed
//!   any exported table, snapshot or serialized form, the output forks.
//!   Identifiers bound to those types are tracked per file and their
//!   `.iter()`/`.keys()`/`.values()`/`.drain()`/`for … in` uses flagged.
//!   Use `BTreeMap`/`BTreeSet`, or sort before emitting and say so in a
//!   `lint:allow` justification.

use super::{find_word, ident_before_colon, ident_before_eq, FileCtx, FileKind, Rule};
use crate::diag::Diagnostic;

#[derive(Debug)]
pub struct Determinism;

/// Crates whose whole purpose is wall-clock measurement.
const TIMING_CRATES: [&str; 2] = ["obs", "exec"];

const CLOCKS: [&str; 2] = ["SystemTime::now", "Instant::now"];
const RNGS: [&str; 3] = ["thread_rng", "rand::random", "RandomState"];
const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let f = ctx.file;
        let mut out = Vec::new();
        let clocks_exempt = TIMING_CRATES.contains(&ctx.krate)
            || matches!(ctx.kind, FileKind::Bin | FileKind::Bench | FileKind::Example);
        let hashed = tracked_hash_idents(f);

        for (i, code) in f.code.iter().enumerate() {
            if f.in_test[i] {
                continue;
            }
            let line = i + 1;
            if !clocks_exempt {
                for pat in CLOCKS {
                    if code.contains(pat) {
                        out.push(Diagnostic::new(
                            &f.rel,
                            line,
                            self.id(),
                            format!(
                                "`{pat}` in deterministic pipeline code: route timing \
                                 through taxitrace-obs spans (excluded from output) or \
                                 move it to a binary"
                            ),
                            &f.raw[i],
                        ));
                    }
                }
            }
            for pat in RNGS {
                if !find_word(code, pat.rsplit("::").next().unwrap_or(pat)).is_empty()
                    && code.contains(pat)
                {
                    out.push(Diagnostic::new(
                        &f.rel,
                        line,
                        self.id(),
                        format!(
                            "`{pat}` is ambient randomness: derive all randomness from \
                             the seeded simulator RNG so runs are reproducible"
                        ),
                        &f.raw[i],
                    ));
                }
            }
            for ident in &hashed {
                if let Some(hit) = hash_iteration(code, ident) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        line,
                        self.id(),
                        format!(
                            "iteration over std Hash{{Map,Set}} `{ident}` ({hit}) has \
                             nondeterministic order: use BTreeMap/BTreeSet, or sort the \
                             result and record why in a lint:allow justification"
                        ),
                        &f.raw[i],
                    ));
                    break; // one finding per line is enough
                }
            }
        }
        out
    }
}

/// Identifiers (let bindings and struct fields) bound to `HashMap`/`HashSet`
/// anywhere in the file, tests included — a field declared in library code
/// is iterated from library code.
fn tracked_hash_idents(f: &crate::source::SourceFile) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for code in &f.code {
        for ty in ["HashMap", "HashSet"] {
            for at in find_word(code, ty) {
                // Patterns: `name: HashMap<…>` (field/typed let) and
                // `let [mut] name = HashMap::new/with_capacity`.
                if let Some(name) = ident_before_colon(&code[..at]) {
                    push_unique(&mut out, name);
                } else if let Some(name) = ident_before_eq(&code[..at]) {
                    push_unique(&mut out, name);
                }
            }
        }
    }
    out.sort();
    out
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// Whether this line iterates `ident`; returns the matched form.
fn hash_iteration(code: &str, ident: &str) -> Option<&'static str> {
    for at in find_word(code, ident) {
        let after = &code[at + ident.len()..];
        for m in ITER_METHODS {
            if after.starts_with(m) {
                return Some("explicit iterator");
            }
        }
        // `for … in [&[mut]] [self.]ident {` / end of line.
        let before = code[..at].trim_end();
        let before = before
            .strip_suffix("self.")
            .map(str::trim_end)
            .unwrap_or(before);
        let before = before.trim_end_matches(['&']).trim_end();
        let before = before.strip_suffix("mut").map(str::trim_end).unwrap_or(before);
        if before.ends_with(" in") || before.ends_with("\tin") {
            let next = after.trim_start();
            if next.is_empty() || next.starts_with('{') {
                return Some("for-loop");
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check_in(krate: &'static str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        Determinism.check(&FileCtx { file: &f, krate, kind })
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        check_in("x", FileKind::Lib, src)
    }

    #[test]
    fn flags_clocks_outside_timing_crates() {
        assert_eq!(check("let t = std::time::Instant::now();").len(), 1);
        assert!(check_in("obs", FileKind::Lib, "let t = Instant::now();").is_empty());
        assert!(check_in("exec", FileKind::Lib, "let t = Instant::now();").is_empty());
        assert!(check_in("x", FileKind::Bin, "let t = Instant::now();").is_empty());
    }

    #[test]
    fn flags_ambient_randomness() {
        assert_eq!(check("let r = rand::thread_rng();").len(), 1);
    }

    #[test]
    fn flags_hashmap_iteration() {
        let src = "let mut seen: HashMap<u64, usize> = HashMap::new();\nfor (k, v) in seen {\n}";
        assert_eq!(check(src).len(), 1);
        let src2 = "let m = HashMap::new();\nlet ks: Vec<_> = m.keys().collect();";
        assert_eq!(check(src2).len(), 1);
    }

    #[test]
    fn lookup_only_hashmap_is_fine() {
        let src = "let mut m: HashMap<u64, usize> = HashMap::new();\nm.insert(1, 2);\nlet v = m.get(&1);";
        assert!(check(src).is_empty());
    }

    #[test]
    fn field_iteration_through_self() {
        let src = "struct S { map: HashMap<u32, u32> }\nimpl S { fn f(&self) { for x in &self.map {} } }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn btreemap_never_tracked() {
        let src = "let m: BTreeMap<u64, u64> = BTreeMap::new();\nfor x in &m {}";
        assert!(check(src).is_empty());
    }
}
