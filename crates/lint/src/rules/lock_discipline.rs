//! `lock-discipline`: lexical discipline for mutex guards.
//!
//! Two findings:
//!
//! * **Nested acquisition** — any `.lock(` while a named guard is already
//!   live. Lock order is not encoded anywhere in this workspace, so the
//!   only deadlock-free discipline is "hold at most one"; the serve
//!   workers' fast path holds zero (see DESIGN.md §14).
//! * **Guard held across a call** — a line that calls out (a free function
//!   or a method on something other than the guard) while a named guard is
//!   live. Whatever the callee does — block on I/O, take another lock, run
//!   user code — it now does under our lock. Lines that touch the guard
//!   itself (`map.entry(...)`, `*slot = v`) are the lock's purpose and are
//!   exempt. This check is scoped to the `serve` crate, whose workers
//!   answer traffic: a lock held across a call there is tail latency for
//!   every concurrent request (registration-time allocation under the obs
//!   locks is fine).
//!
//! Both findings accept a `// sync(<name>): <why>` justification within
//! three lines (the same annotation `atomics-audit` consumes): the
//! `EpochCell` swap path *deliberately* bumps the epoch inside the
//! critical section, and says so.
//!
//! Guard recognition is lexical: `let [mut] name = <expr>.lock()` where
//! the statement ends at the lock acquisition, modulo the poison-recovery
//! chain (`.unwrap()`, `.expect(...)`, `.unwrap_or_else(...)`). A
//! `.lock()` consumed mid-chain (`….lock().unwrap….iter().collect()`) is
//! a temporary — it drops at the semicolon and is not tracked. Guard
//! liveness ends at `drop(name)` or when the enclosing block closes.

use super::{find_word, take_trailing_ident, FileCtx, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

#[derive(Debug)]
pub struct LockDiscipline;

/// How many lines above a finding a `// sync(...)` justification may sit.
const LOOKBACK: usize = 3;

/// Crates whose request path must not hold a lock across a call. The
/// nested-acquisition check runs everywhere; this narrower latency check
/// covers the serving workers (`fixture`/`x` are the rule's own tests).
const ACROSS_CALL_CRATES: [&str; 3] = ["serve", "fixture", "x"];

/// Calls that are part of guard plumbing, not calls "out of" the lock.
const PLUMBING: [&str; 5] = ["unwrap", "expect", "unwrap_or_else", "into_inner", "drop"];

/// Keywords that look like `ident(` but are control flow.
const KEYWORDS: [&str; 6] = ["if", "while", "match", "for", "loop", "return"];

#[derive(Debug)]
struct Guard {
    name: String,
    /// Brace depth at which the binding lives; popped when depth drops
    /// below it.
    depth: i32,
    /// 1-based binding line (for the finding message).
    line: usize,
    /// Line span of the binding statement — excluded from both checks.
    stmt: (usize, usize),
}

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        if ctx.krate == "sync-model" {
            // The model checker's Mutex shim is itself the lock under test.
            return Vec::new();
        }
        let f = ctx.file;
        let mut out = Vec::new();
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth: i32 = 0;

        for (i, code) in f.code.iter().enumerate() {
            // Drop guards whose scope closed before this line's content.
            let opens = code.matches('{').count() as i32;
            let closes = code.matches('}').count() as i32;
            let line_min_depth = depth + line_min_brace_delta(code);
            guards.retain(|g| g.depth <= line_min_depth);
            for g_name in dropped_guards(code) {
                guards.retain(|g| g.name != g_name);
            }

            let in_binding_stmt =
                |g: &Guard, i: usize| i >= g.stmt.0 && i <= g.stmt.1;

            if code.contains(".lock(") {
                if let Some(stmt) = statement_span(f, i) {
                    let held: Vec<String> = guards
                        .iter()
                        .filter(|g| !in_binding_stmt(g, i))
                        .map(|g| format!("`{}` (line {})", g.name, g.line))
                        .collect();
                    if let Some(holder) = held.first() {
                        if !justified(f, i) {
                            out.push(Diagnostic::new(
                                &f.rel,
                                i + 1,
                                self.id(),
                                format!(
                                    "nested `.lock()` while guard {holder} is held: \
                                     hold at most one lock, or justify the ordering \
                                     with a `// sync(<name>): <why>` comment"
                                ),
                                &f.raw[i],
                            ));
                        }
                    } else if let Some(name) = guard_binding(f, stmt) {
                        // Only the first `.lock(` line of the statement
                        // registers the guard.
                        if stmt.0 == i || first_lock_line(f, stmt) == Some(i) {
                            guards.push(Guard {
                                name,
                                depth: depth + opens - closes,
                                line: stmt.0 + 1,
                                stmt,
                            });
                        }
                    }
                }
            } else if ACROSS_CALL_CRATES.contains(&ctx.krate) {
                // Calls while a guard is live, on lines that ignore the
                // guard entirely.
                let live: Vec<&Guard> = guards
                    .iter()
                    .filter(|g| !in_binding_stmt(g, i))
                    .collect();
                if let Some(g) = live.first() {
                    let touches_guard =
                        live.iter().any(|g| !find_word(code, &g.name).is_empty());
                    if !touches_guard {
                        if let Some(callee) = outward_call(code) {
                            if !justified(f, i) {
                                out.push(Diagnostic::new(
                                    &f.rel,
                                    i + 1,
                                    self.id(),
                                    format!(
                                        "call to `{callee}(…)` while guard `{}` (line {}) \
                                         is held: drop the guard first (narrow the scope \
                                         or `drop({})`), or justify with `// sync(<name>): \
                                         <why>`",
                                        g.name, g.line, g.name
                                    ),
                                    &f.raw[i],
                                ));
                            }
                        }
                    }
                }
            }

            depth += opens - closes;
        }
        out
    }
}

/// Whether a `// sync(...): ...` justification sits at `line` or within
/// [`LOOKBACK`] lines above.
fn justified(f: &SourceFile, line: usize) -> bool {
    (line.saturating_sub(LOOKBACK)..=line).any(|j| {
        let c = &f.comments[j];
        c.find("sync(")
            .is_some_and(|at| c[at..].contains(')') && c[at..].contains(':'))
    })
}

/// `drop(name)` occurrences on a line.
fn dropped_guards(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for at in find_word(code, "drop") {
        let rest = &code[at + "drop".len()..];
        let Some(inner) = rest.strip_prefix('(') else { continue };
        let Some(close) = inner.find(')') else { continue };
        let name = inner[..close].trim();
        if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            out.push(name.to_string());
        }
    }
    out
}

/// The most negative running brace delta within the line (so a line like
/// `} else {` correctly closes the scope before reopening).
fn line_min_brace_delta(code: &str) -> i32 {
    let mut delta = 0;
    let mut min = 0;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => {
                delta -= 1;
                min = min.min(delta);
            }
            _ => {}
        }
    }
    min
}

/// The line span `(first, last)` of the statement containing line `i`:
/// walk back while the previous line does not end a statement or open a
/// block, forward to the terminating `;`/`{`. Bounded to 8 lines each way.
fn statement_span(f: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let boundary = |j: usize| {
        let t = f.code[j].trim_end();
        t.ends_with(';') || t.ends_with('{') || t.ends_with('}') || t.is_empty()
    };
    let mut start = i;
    for _ in 0..8 {
        if start == 0 || boundary(start - 1) {
            break;
        }
        start -= 1;
    }
    let mut end = i;
    for _ in 0..8 {
        let t = f.code[end].trim_end();
        if t.ends_with(';') || t.ends_with('{') {
            break;
        }
        if end + 1 >= f.code.len() {
            return Some((start, end));
        }
        end += 1;
    }
    Some((start, end))
}

/// If the statement is `let [mut] <name> = <expr>.lock()<plumbing>;`,
/// the bound guard name.
fn guard_binding(f: &SourceFile, (start, end): (usize, usize)) -> Option<String> {
    let stmt: String = f.code[start..=end.min(f.code.len() - 1)].join(" ");
    let trimmed = stmt.trim_start();
    let after_let = trimmed.strip_prefix("let ")?;
    let after_mut = after_let.trim_start();
    let after_mut = after_mut.strip_prefix("mut ").unwrap_or(after_mut);
    let name: String = after_mut
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    // The statement must END with the acquisition (+ poison plumbing);
    // anything else chained after `.lock()` makes it a temporary.
    let lock_at = stmt.rfind(".lock(")?;
    let mut rest = skip_balanced(&stmt[lock_at + ".lock".len()..])?;
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(';') {
            rest = r;
            break;
        }
        if rest.is_empty() {
            break;
        }
        let r = rest.strip_prefix('.')?;
        let ident: String = r.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if ident.is_empty() || !PLUMBING.contains(&ident.as_str()) {
            return None;
        }
        let after_ident = &r[ident.len()..];
        rest = if after_ident.trim_start().starts_with('(') {
            skip_balanced(after_ident.trim_start())?
        } else if ident == "unwrap_or_else" || ident == "expect" {
            return None;
        } else {
            after_ident
        };
    }
    (rest.trim().is_empty()).then_some(name)
}

/// Skips a balanced `(...)` group at the start of `s`, returning the tail.
fn skip_balanced(s: &str) -> Option<&str> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(&s[i + 1..]);
                }
            }
            _ if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// The first line within `stmt` containing `.lock(`.
fn first_lock_line(f: &SourceFile, (start, end): (usize, usize)) -> Option<usize> {
    (start..=end.min(f.code.len() - 1)).find(|&j| f.code[j].contains(".lock("))
}

/// A call on this line that goes somewhere other than the guard: returns
/// the callee identifier. Macros (`…!(`), control-flow keywords,
/// `Uppercase(` constructors and guard plumbing are not calls "out".
fn outward_call(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let ident = take_trailing_ident(&code[..i])?;
        let before = code[..i - ident.len()].trim_end();
        if before.ends_with('!') {
            continue;
        }
        if KEYWORDS.contains(&ident.as_str()) || PLUMBING.contains(&ident.as_str()) {
            continue;
        }
        if ident.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue;
        }
        return Some(ident);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        LockDiscipline.check(&FileCtx { file: &f, krate: "x", kind: FileKind::Lib })
    }

    #[test]
    fn nested_lock_flagged() {
        let src = "fn f() {\n    let a = m1.lock().unwrap();\n    let b = m2.lock().unwrap();\n}";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("nested"));
    }

    #[test]
    fn sequential_locks_fine() {
        let src = "fn f() {\n    { let a = m1.lock().unwrap(); a.push(1); }\n    { let b = m2.lock().unwrap(); b.push(2); }\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn temporary_lock_chain_not_a_guard() {
        let src = "fn f() {\n    let v: Vec<u32> = m.lock().unwrap().iter().copied().collect();\n    let w = other.lock().unwrap();\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn call_while_guard_held_flagged() {
        let src = "fn f() {\n    let g = m.lock().unwrap();\n    publish(1);\n}";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("publish"));
    }

    #[test]
    fn guard_touching_lines_exempt() {
        let src = "fn f() {\n    let mut g = m.lock().unwrap();\n    g.entry(k.to_string()).or_default();\n    *g += 1;\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn f() {\n    let g = m.lock().unwrap();\n    drop(g);\n    publish(1);\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn sync_comment_justifies() {
        let src = "fn f() {\n    let g = m.lock().unwrap();\n    // sync(epoch): bump inside the critical section is the protocol\n    self.epoch.fetch_add(1);\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn multiline_binding_recognized() {
        let src = "fn f() {\n    let mut map = self\n        .inner\n        .maps\n        .lock()\n        .unwrap_or_else(std::sync::PoisonError::into_inner);\n    map.insert(1, 2);\n    other_call(3);\n}";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("other_call"));
    }

    #[test]
    fn scope_close_releases_guard() {
        let src = "fn f() {\n    if c {\n        let g = m.lock().unwrap();\n        g.push(1);\n    }\n    publish(1);\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }
}
