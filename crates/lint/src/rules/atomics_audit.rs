//! `atomics-audit`: every shared-state declaration must be inventoried in
//! the committed `crates/lint/sync.registry`, and every atomic operation
//! must (a) carry a `// sync(<name>): <why>` justification on the same
//! line or within the three lines above, and (b) use only the memory
//! orderings the registry entry's policy permits.
//!
//! The registry is the workspace's concurrency design doc in machine-
//! checkable form: one line per cell, `<kind> <file>:<name> <policy>
//! <rationale…>`. Policies for atomics:
//!
//! * `monotonic` — a counter merged by atomicity alone (fetch_add), read
//!   after a happens-before edge established elsewhere (thread join, lock).
//!   All orderings must be `Relaxed`; anything stronger is wasted fencing
//!   that misleads readers into seeing a protocol that isn't there.
//! * `relaxed` — a standalone cell (config override, last-write-wins
//!   gauge) publishing nothing beyond its own value. All orderings
//!   `Relaxed`.
//! * `acqrel` — a publication protocol: stores/RMWs `Release`, loads
//!   `Acquire` (CAS failure may be `Acquire`/`Relaxed`). A `Relaxed` here
//!   silently deletes the happens-before edge — exactly the weakening the
//!   `taxitrace-sync-model` checker demonstrates against the extracted
//!   protocol models (see DESIGN.md §14).
//! * `seqcst` — requires a total-order argument in the rationale; `SeqCst`
//!   anywhere else is flagged as unjustified.
//!
//! `mutex`/`rwlock` entries use policy `guarded`, `OnceLock`/`LazyLock`
//! entries `init-once`; these are registration-only (the `lock-discipline`
//! rule audits guard usage). The `sync-model` crate is exempt: its shims
//! *are* the modeled operations.

use super::{find_word, ident_before_colon, ident_before_eq, word_bounded, FileCtx, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// What family of shared-state primitive a registry entry covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    Atomic,
    Mutex,
    RwLock,
    Once,
}

impl SyncKind {
    fn as_str(self) -> &'static str {
        match self {
            SyncKind::Atomic => "atomic",
            SyncKind::Mutex => "mutex",
            SyncKind::RwLock => "rwlock",
            SyncKind::Once => "once",
        }
    }
}

/// The ordering discipline a registered cell commits to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Monotonic counter: all orderings `Relaxed`, reads synchronized
    /// elsewhere (join/lock).
    Monotonic,
    /// Standalone cell publishing nothing but its own value: `Relaxed`.
    Relaxed,
    /// Publication protocol: `Release` writes pair with `Acquire` reads.
    AcqRel,
    /// Total-order protocol: everything `SeqCst` (rationale must say why).
    SeqCst,
    /// Mutex/RwLock: data only touched through the guard.
    Guarded,
    /// OnceLock/LazyLock: write-once initialization.
    InitOnce,
}

impl SyncPolicy {
    fn as_str(self) -> &'static str {
        match self {
            SyncPolicy::Monotonic => "monotonic",
            SyncPolicy::Relaxed => "relaxed",
            SyncPolicy::AcqRel => "acqrel",
            SyncPolicy::SeqCst => "seqcst",
            SyncPolicy::Guarded => "guarded",
            SyncPolicy::InitOnce => "init-once",
        }
    }
}

/// One `<kind> <file>:<name> <policy> <rationale…>` registry line.
#[derive(Debug, Clone)]
pub struct SyncEntry {
    pub kind: SyncKind,
    pub file: String,
    pub name: String,
    pub policy: SyncPolicy,
    pub rationale: String,
    /// 1-based line in the registry file (for stale-entry findings).
    pub line: usize,
}

impl SyncEntry {
    /// The kind token as written in the registry file.
    pub fn kind_str(&self) -> &'static str {
        self.kind.as_str()
    }
}

/// The checked-in shared-state inventory (`crates/lint/sync.registry`).
#[derive(Debug, Clone, Default)]
pub struct SyncRegistry {
    entries: Vec<SyncEntry>,
}

impl SyncRegistry {
    /// Parses `<kind> <file>:<name> <policy> <rationale…>` lines; `#`
    /// comments and blanks ignored.
    pub fn parse(text: &str) -> Result<SyncRegistry, String> {
        let mut entries: Vec<SyncEntry> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| format!("sync registry line {}: {what}, got {line:?}", i + 1);
            let mut parts = line.split_whitespace();
            let kind = match parts.next() {
                Some("atomic") => SyncKind::Atomic,
                Some("mutex") => SyncKind::Mutex,
                Some("rwlock") => SyncKind::RwLock,
                Some("once") => SyncKind::Once,
                _ => return Err(bad("expected kind atomic|mutex|rwlock|once")),
            };
            let key = parts.next().ok_or_else(|| bad("missing <file>:<name> key"))?;
            let (file, name) = key
                .rsplit_once(':')
                .ok_or_else(|| bad("key must be <file>:<name>"))?;
            let policy = match (kind, parts.next()) {
                (SyncKind::Atomic, Some("monotonic")) => SyncPolicy::Monotonic,
                (SyncKind::Atomic, Some("relaxed")) => SyncPolicy::Relaxed,
                (SyncKind::Atomic, Some("acqrel")) => SyncPolicy::AcqRel,
                (SyncKind::Atomic, Some("seqcst")) => SyncPolicy::SeqCst,
                (SyncKind::Mutex | SyncKind::RwLock, Some("guarded")) => SyncPolicy::Guarded,
                (SyncKind::Once, Some("init-once")) => SyncPolicy::InitOnce,
                _ => return Err(bad("policy does not fit the kind")),
            };
            let rationale = parts.collect::<Vec<_>>().join(" ");
            if rationale.is_empty() {
                return Err(bad("missing rationale"));
            }
            if entries.iter().any(|e| e.file == file && e.name == name) {
                return Err(bad("duplicate key"));
            }
            entries.push(SyncEntry {
                kind,
                file: file.to_string(),
                name: name.to_string(),
                policy,
                rationale,
                line: i + 1,
            });
        }
        Ok(SyncRegistry { entries })
    }

    pub fn lookup(&self, file: &str, name: &str) -> Option<&SyncEntry> {
        self.entries.iter().find(|e| e.file == file && e.name == name)
    }

    pub fn entries(&self) -> &[SyncEntry] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Debug)]
pub struct AtomicsAudit {
    registry: SyncRegistry,
}

impl AtomicsAudit {
    pub fn new(registry: SyncRegistry) -> AtomicsAudit {
        AtomicsAudit { registry }
    }
}

/// How many lines above an atomic op may carry the `// sync(...)` comment.
const LOOKBACK: usize = 3;

/// Crates whose atomics are themselves the subject of modeling/auditing.
const EXEMPT_CRATES: [&str; 1] = ["sync-model"];

const ATOMIC_TYPES: [&str; 12] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];
const ONCE_TYPES: [&str; 2] = ["OnceLock", "LazyLock"];
const ORDER_WORDS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Load,
    Store,
    Rmw,
    Cas,
}

impl OpClass {
    fn as_str(self) -> &'static str {
        match self {
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Rmw => "read-modify-write",
            OpClass::Cas => "compare-exchange",
        }
    }
}

const METHODS: [(&str, OpClass); 13] = [
    (".load(", OpClass::Load),
    (".store(", OpClass::Store),
    (".swap(", OpClass::Rmw),
    (".fetch_add(", OpClass::Rmw),
    (".fetch_sub(", OpClass::Rmw),
    (".fetch_and(", OpClass::Rmw),
    (".fetch_or(", OpClass::Rmw),
    (".fetch_xor(", OpClass::Rmw),
    (".fetch_max(", OpClass::Rmw),
    (".fetch_min(", OpClass::Rmw),
    (".fetch_nand(", OpClass::Rmw),
    (".compare_exchange(", OpClass::Cas),
    (".compare_exchange_weak(", OpClass::Cas),
];

impl Rule for AtomicsAudit {
    fn id(&self) -> &'static str {
        "atomics-audit"
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        if EXEMPT_CRATES.contains(&ctx.krate) {
            return Vec::new();
        }
        let f = ctx.file;
        let mut out = Vec::new();

        // (a) Every declaration must be registered under this file's path.
        for (i, name, kind) in declared_sync_names(f) {
            match self.registry.lookup(&f.rel, &name) {
                None => out.push(Diagnostic::new(
                    &f.rel,
                    i + 1,
                    self.id(),
                    format!(
                        "shared-state declaration `{name}` is not in crates/lint/\
                         sync.registry: add `{} {}:{name} <policy> <rationale>` so its \
                         ordering discipline is on record",
                        kind.as_str(),
                        f.rel
                    ),
                    &f.raw[i],
                )),
                Some(entry) if entry.kind != kind => out.push(Diagnostic::new(
                    &f.rel,
                    i + 1,
                    self.id(),
                    format!(
                        "`{name}` is registered as {} but declared as {}: fix the \
                         registry entry",
                        entry.kind.as_str(),
                        kind.as_str()
                    ),
                    &f.raw[i],
                )),
                Some(_) => {}
            }
        }

        // (b) Every atomic op needs a justification and a policy-conformant
        // ordering.
        let calls = atomic_calls(f);
        let mut consumed: Vec<(usize, usize)> = Vec::new();
        for call in &calls {
            for &(line, col, _) in &call.orderings {
                consumed.push((line, col));
            }
            self.audit_call(f, call, &mut out);
        }

        // (c) A memory-ordering token the call scanner could not attribute
        // to an atomic method is outside what this audit can check.
        for (i, code) in f.code.iter().enumerate() {
            for (col, word) in order_tokens(code) {
                if !consumed.contains(&(i, col)) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        i + 1,
                        self.id(),
                        format!(
                            "memory ordering `Ordering::{word}` outside a recognized \
                             atomic operation: the audit cannot attribute it to a \
                             registered cell"
                        ),
                        &f.raw[i],
                    ));
                }
            }
        }
        out
    }
}

impl AtomicsAudit {
    fn audit_call(&self, f: &SourceFile, call: &AtomicCall, out: &mut Vec<Diagnostic>) {
        let i = call.line;
        let Some((name, justified)) = nearest_sync_annotation(f, i) else {
            out.push(Diagnostic::new(
                &f.rel,
                i + 1,
                "atomics-audit",
                format!(
                    "atomic `{}` without a `// sync(<name>): <why>` annotation within \
                     {LOOKBACK} lines: name the registered cell and state why this \
                     ordering is sufficient",
                    call.method
                ),
                &f.raw[i],
            ));
            return;
        };
        if !justified {
            out.push(Diagnostic::new(
                &f.rel,
                i + 1,
                "atomics-audit",
                format!(
                    "sync annotation for `{name}` carries no justification: write \
                     `// sync({name}): <why this ordering is sufficient>`"
                ),
                &f.raw[i],
            ));
            return;
        }
        let entry = match self.registry.lookup(&f.rel, &name) {
            Some(e) if e.kind == SyncKind::Atomic => e,
            _ => {
                out.push(Diagnostic::new(
                    &f.rel,
                    i + 1,
                    "atomics-audit",
                    format!(
                        "sync({name}) does not name a registered atomic for this file: \
                         register it in crates/lint/sync.registry as \
                         `atomic {}:{name} <policy> <rationale>`",
                        f.rel
                    ),
                    &f.raw[i],
                ));
                return;
            }
        };
        let total = call.orderings.len();
        for (pos, &(line, _, word)) in call.orderings.iter().enumerate() {
            let failure_pos = call.op == OpClass::Cas && total >= 2 && pos == total - 1;
            let allowed = allowed_orders(entry.policy, call.op, failure_pos);
            if allowed.contains(&word) {
                continue;
            }
            let message = if word == "SeqCst" {
                format!(
                    "unjustified `SeqCst` on `{name}` (policy {}): use {} or upgrade the \
                     registry entry to seqcst with a total-order rationale",
                    entry.policy.as_str(),
                    or_list(allowed)
                )
            } else if entry.policy == SyncPolicy::AcqRel && word == "Relaxed" {
                format!(
                    "`Relaxed` {} on `{name}` weakens the registered acquire/release \
                     protocol — it deletes the happens-before edge the readers rely on \
                     (the sync-model checker demonstrates the resulting stale read)",
                    call.op.as_str()
                )
            } else {
                format!(
                    "`{word}` {} on `{name}` does not satisfy registry policy `{}` \
                     (expected {})",
                    call.op.as_str(),
                    entry.policy.as_str(),
                    or_list(allowed)
                )
            };
            out.push(Diagnostic::new(&f.rel, line + 1, "atomics-audit", message, &f.raw[line]));
        }
    }
}

fn allowed_orders(policy: SyncPolicy, op: OpClass, cas_failure: bool) -> &'static [&'static str] {
    match policy {
        SyncPolicy::Monotonic | SyncPolicy::Relaxed => &["Relaxed"],
        SyncPolicy::SeqCst => &["SeqCst"],
        SyncPolicy::AcqRel => match op {
            OpClass::Load => &["Acquire"],
            OpClass::Store => &["Release"],
            OpClass::Rmw => &["Acquire", "Release", "AcqRel"],
            OpClass::Cas => {
                if cas_failure {
                    &["Acquire", "Relaxed"]
                } else {
                    &["Acquire", "Release", "AcqRel"]
                }
            }
        },
        // Guarded/InitOnce cells have no raw atomic ops; any ordering that
        // reaches here is a registry-kind mismatch reported earlier.
        SyncPolicy::Guarded | SyncPolicy::InitOnce => &[],
    }
}

fn or_list(words: &[&str]) -> String {
    words.join("/")
}

/// The `(file, name)` keys this file references — declarations found plus
/// names cited in `// sync(...)` comments. Used by the workspace pass to
/// report registry entries that no longer match any code.
pub fn sync_usage(f: &SourceFile) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for (_, name, _) in declared_sync_names(f) {
        let key = (f.rel.clone(), name);
        if !out.contains(&key) {
            out.push(key);
        }
    }
    for comment in &f.comments {
        for (name, _) in sync_annotations(comment) {
            let key = (f.rel.clone(), name);
            if !out.contains(&key) {
                out.push(key);
            }
        }
    }
    out
}

/// Declarations of atomics/locks/once-cells: `(line index, name, kind)`.
fn declared_sync_names(f: &SourceFile) -> Vec<(usize, String, SyncKind)> {
    let mut out: Vec<(usize, String, SyncKind)> = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        let mut hits: Vec<(usize, SyncKind)> = Vec::new();
        for ty in ATOMIC_TYPES {
            hits.extend(find_word(code, ty).into_iter().map(|at| (at, SyncKind::Atomic)));
        }
        hits.extend(find_word(code, "Mutex").into_iter().map(|at| (at, SyncKind::Mutex)));
        hits.extend(find_word(code, "RwLock").into_iter().map(|at| (at, SyncKind::RwLock)));
        for ty in ONCE_TYPES {
            hits.extend(find_word(code, ty).into_iter().map(|at| (at, SyncKind::Once)));
        }
        hits.sort_by_key(|&(at, _)| at);
        for (at, kind) in hits {
            let Some(name) = declared_name(&code[..at]) else { continue };
            if is_sync_type_word(&name) || name == "Arc" {
                continue;
            }
            if !out.iter().any(|(li, n, _)| *li == i && *n == name) {
                out.push((i, name, kind));
            }
        }
    }
    out
}

fn is_sync_type_word(name: &str) -> bool {
    ATOMIC_TYPES.contains(&name)
        || ONCE_TYPES.contains(&name)
        || name == "Mutex"
        || name == "RwLock"
}

/// The identifier a sync type occurrence is bound to, from the text before
/// it: `name: [Wrapper<]* Ty`, `let [mut] name = [Wrapper::new(]* Ty...`,
/// or a tuple struct `struct Name(... Ty ...)`.
fn declared_name(prefix: &str) -> Option<String> {
    if let Some(name) = ident_before_colon(peel_generic_wrappers(prefix)) {
        return Some(name);
    }
    if let Some(name) = eq_through_wrappers(prefix) {
        return Some(name);
    }
    tuple_struct_name(prefix)
}

/// Peels trailing generic wrappers (`Vec<`, `Arc<` …) so a field like
/// `counts: Vec<AtomicU64>` resolves to `counts`.
fn peel_generic_wrappers(mut rest: &str) -> &str {
    loop {
        rest = rest.trim_end();
        if let Some(inner) = rest.strip_suffix('<') {
            rest = inner.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_' || c == ':');
        } else {
            return rest;
        }
    }
}

/// Peels trailing constructor wrappers (`Arc::new(`, `Mutex::new(` …) so
/// `let stop = Arc::new(AtomicBool::new(false))` resolves to `stop`.
fn eq_through_wrappers(prefix: &str) -> Option<String> {
    let mut rest = prefix.trim_end();
    while let Some(inner) = rest.strip_suffix('(') {
        rest = inner.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_' || c == ':');
        rest = rest.trim_end();
    }
    ident_before_eq(rest)
}

/// `pub struct Counter(Arc<AtomicU64>)` → `Counter`.
fn tuple_struct_name(prefix: &str) -> Option<String> {
    let at = *find_word(prefix, "struct").last()?;
    let after = prefix[at + "struct".len()..].trim_start();
    let ident: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

#[derive(Debug)]
struct AtomicCall {
    /// Line index of the method token.
    line: usize,
    op: OpClass,
    method: String,
    /// `(line index, column, ordering word)` for each argument ordering.
    orderings: Vec<(usize, usize, &'static str)>,
}

/// Method calls that take a memory ordering. A candidate method whose
/// argument list carries no `Ordering::*` token is *not* an atomic call
/// (e.g. `codec::load(path, &opts)` or an `EpochCell::swap`).
fn atomic_calls(f: &SourceFile) -> Vec<AtomicCall> {
    let mut out = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        for (pat, op) in METHODS {
            let mut from = 0;
            while let Some(pos) = code[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let open = at + pat.len() - 1;
                let orderings = call_orderings(f, i, open);
                if orderings.is_empty() {
                    continue;
                }
                out.push(AtomicCall {
                    line: i,
                    op,
                    method: pat.trim_matches(['.', '(']).to_string(),
                    orderings,
                });
            }
        }
    }
    out.sort_by_key(|c| c.line);
    out
}

/// Ordering tokens inside the argument list opening at `(line, col)`,
/// matching parentheses across up to 12 lines of the masked code channel.
fn call_orderings(f: &SourceFile, line: usize, col: usize) -> Vec<(usize, usize, &'static str)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    for (j, code) in f.code.iter().enumerate().skip(line).take(12) {
        let start = if j == line { col } else { 0 };
        let mut arg_from: Option<usize> = if j == line { None } else { Some(0) };
        for (k, c) in code[start..].char_indices() {
            let k = start + k;
            match c {
                '(' => {
                    depth += 1;
                    if depth == 1 {
                        arg_from = Some(k + 1);
                    }
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        if let Some(afrom) = arg_from {
                            collect_orders(code, afrom, k, j, &mut out);
                        }
                        return out;
                    }
                }
                _ => {}
            }
        }
        if let Some(afrom) = arg_from {
            collect_orders(code, afrom, code.len(), j, &mut out);
        }
    }
    out
}

fn collect_orders(
    code: &str,
    from: usize,
    to: usize,
    line: usize,
    out: &mut Vec<(usize, usize, &'static str)>,
) {
    for (col, word) in order_tokens(&code[from..to]) {
        out.push((line, from + col, word));
    }
}

/// `Ordering::<word>` tokens on a line, for the five memory orderings only
/// (`cmp::Ordering::Less` and friends never match).
fn order_tokens(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("Ordering::") {
        let at = from + pos;
        from = at + "Ordering::".len();
        if !word_bounded(code, at, "Ordering".len()) {
            continue;
        }
        let after = &code[at + "Ordering::".len()..];
        for word in ORDER_WORDS {
            if after.starts_with(word)
                && after[word.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
            {
                out.push((at, word));
                break;
            }
        }
    }
    out
}

/// The nearest `// sync(<name>)[: <why>]` annotation at `line` or within
/// [`LOOKBACK`] lines above: `(name, has justification)`.
fn nearest_sync_annotation(f: &SourceFile, line: usize) -> Option<(String, bool)> {
    for j in (line.saturating_sub(LOOKBACK)..=line).rev() {
        if let Some(first) = sync_annotations(&f.comments[j]).into_iter().next() {
            return Some(first);
        }
    }
    None
}

/// All `sync(<name>)` markers in a comment line, with whether each carries
/// a non-empty `: <why>` tail.
fn sync_annotations(comment: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = comment[from..].find("sync(") {
        let at = from + pos;
        from = at + "sync(".len();
        if !word_bounded(comment, at, "sync".len()) {
            continue;
        }
        let rest = &comment[at + "sync(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let name = rest[..close].trim().to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let tail = &rest[close + 1..];
        let justified = tail
            .strip_prefix(':')
            .is_some_and(|t| !t.trim().is_empty());
        out.push((name, justified));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{FileCtx, FileKind};
    use crate::source::SourceFile;

    fn registry() -> SyncRegistry {
        SyncRegistry::parse(
            "atomic crates/x/src/lib.rs:epoch acqrel readers pair Acquire with the \
             writer's Release bump\n\
             atomic crates/x/src/lib.rs:hits monotonic counter merged by join\n\
             mutex crates/x/src/lib.rs:slot guarded protects the snapshot\n",
        )
        .expect("valid registry")
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        AtomicsAudit::new(registry()).check(&FileCtx {
            file: &f,
            krate: "x",
            kind: FileKind::Lib,
        })
    }

    #[test]
    fn registered_and_justified_op_passes() {
        let src = "struct S { epoch: AtomicU64 }\n\
                   // sync(epoch): pairs with the writer's Release bump\n\
                   let e = self.epoch.load(Ordering::Acquire);";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn unregistered_declaration_flagged() {
        let out = check("static ROGUE: AtomicU64 = AtomicU64::new(0);");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not in crates/lint/sync.registry"));
    }

    #[test]
    fn wrapped_declaration_name_resolves() {
        let out = check("let rogue = Arc::new(AtomicBool::new(false));");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`rogue`"));
    }

    #[test]
    fn missing_annotation_flagged() {
        let src = "struct S { epoch: AtomicU64 }\nlet e = self.epoch.load(Ordering::Acquire);";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("without a `// sync("));
    }

    #[test]
    fn relaxed_under_acqrel_flagged_as_weakening() {
        let src = "struct S { epoch: AtomicU64 }\n\
                   // sync(epoch): fast path\n\
                   let e = self.epoch.load(Ordering::Relaxed);";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("weakens"));
    }

    #[test]
    fn seqcst_under_monotonic_flagged_as_unjustified() {
        let src = "struct S { hits: AtomicU64 }\n\
                   // sync(hits): counter\n\
                   self.hits.fetch_add(1, Ordering::SeqCst);";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unjustified `SeqCst`"));
    }

    #[test]
    fn multiline_cas_orderings_audited() {
        let src = "struct S { epoch: AtomicU64 }\n\
                   // sync(epoch): publish\n\
                   self.epoch.compare_exchange_weak(\n\
                       old,\n\
                       new,\n\
                       Ordering::Release,\n\
                       Ordering::Relaxed,\n\
                   );";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn non_atomic_load_call_ignored() {
        assert!(check("let out = codec::load(path, &opts);").is_empty());
    }

    #[test]
    fn orphan_ordering_flagged() {
        let out = check("helper(Ordering::SeqCst);");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("outside a recognized atomic operation"));
    }

    #[test]
    fn registry_rejects_bad_lines() {
        assert!(SyncRegistry::parse("atomic nofile relaxed why\n").is_err());
        assert!(SyncRegistry::parse("atomic a.rs:x guarded why\n").is_err());
        assert!(SyncRegistry::parse("atomic a.rs:x relaxed\n").is_err());
        assert!(SyncRegistry::parse("widget a.rs:x relaxed why\n").is_err());
    }

    #[test]
    fn cmp_ordering_never_matches() {
        assert!(check("let c = a.cmp(&b); match c { std::cmp::Ordering::Less => {} _ => {} }")
            .is_empty());
    }
}
