//! `workspace-hygiene`: member crates must take every dependency through
//! `[workspace.dependencies]` (`foo.workspace = true` or
//! `foo = { workspace = true, … }`). Direct `path = "…"` or versioned deps
//! in a member manifest bypass the single place where versions and the
//! offline third_party shims are pinned — exactly how a crate quietly
//! starts resolving a different serde than the rest of the workspace.
//!
//! The *root* manifest is exempt by design: `[workspace.dependencies]` is
//! where the path pins live.

use crate::diag::Diagnostic;

pub const RULE_ID: &str = "workspace-hygiene";

/// Lints one member `Cargo.toml`. `rel` is the workspace-relative path.
pub fn check_manifest(rel: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = is_dependency_section(line);
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // `name.workspace = true` or `name = { workspace = true, … }`.
        let inherits = line.contains("workspace = true") || line.contains("workspace=true");
        let has_path = line.contains("path =") || line.contains("path=");
        if has_path {
            out.push(Diagnostic::new(
                rel,
                i + 1,
                RULE_ID,
                "member manifest declares a `path` dependency: route it through \
                 `[workspace.dependencies]` in the root Cargo.toml and use \
                 `workspace = true` here",
                raw,
            ));
        } else if !inherits && line.contains('=') {
            out.push(Diagnostic::new(
                rel,
                i + 1,
                RULE_ID,
                "member dependency does not inherit from the workspace: use \
                 `<name>.workspace = true` so versions stay pinned in one place",
                raw,
            ));
        }
    }
    out
}

fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(['[', ']']);
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || (h.starts_with("target.") && h.ends_with("dependencies"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_deps_pass() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nserde.workspace = true\nfoo = { workspace = true, features = [\"derive\"] }\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn path_dep_flagged() {
        let toml = "[dependencies]\nfoo = { path = \"../foo\" }\n";
        let out = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("path"));
    }

    #[test]
    fn versioned_dep_flagged() {
        let toml = "[dev-dependencies]\nproptest = \"1\"\n";
        assert_eq!(check_manifest("crates/x/Cargo.toml", toml).len(), 1);
    }

    #[test]
    fn package_section_ignored() {
        let toml = "[package]\nname = \"x\"\nversion.workspace = true\nedition = \"2021\"\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn bin_section_ignored() {
        let toml = "[[bin]]\nname = \"t\"\npath = \"src/main.rs\"\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }
}
