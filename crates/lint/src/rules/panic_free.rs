//! `panic-free-library`: library code must not contain reachable panic
//! sites. PR 2 scrubbed `crates/core` and `crates/bench` by hand; this rule
//! keeps every library crate scrubbed.
//!
//! Flagged in non-test library code:
//!
//! * `.unwrap()` / `.expect(...)` on `Option`/`Result`;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * the slice-index heuristic `…)[N]` — integer-literal indexing into the
//!   result of a call, which encodes an unchecked length assumption
//!   (`graph.neighbors(n)[0]`). Plain `arr[i]` indexing is *not* flagged:
//!   bounds are usually established locally and flagging every index would
//!   drown the signal.
//!
//! Binaries (`src/bin/**`), tests, benches and examples may panic: a CLI
//! aborting on broken input is fine; a library taking down a server is not.

use super::{find_word, FileCtx, FileKind, Rule};
use crate::diag::Diagnostic;

#[derive(Debug)]
pub struct PanicFree;

const METHOD_PATTERNS: [(&str, &str); 2] = [
    (".unwrap()", "`.unwrap()` in library code"),
    (".expect(", "`.expect(...)` in library code"),
];

const MACRO_PATTERNS: [(&str, &str); 4] = [
    ("panic!", "`panic!` in library code"),
    ("unreachable!", "`unreachable!` in library code"),
    ("todo!", "`todo!` in library code"),
    ("unimplemented!", "`unimplemented!` in library code"),
];

impl Rule for PanicFree {
    fn id(&self) -> &'static str {
        "panic-free-library"
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::Lib
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        if ctx.kind != FileKind::Lib {
            return Vec::new();
        }
        let f = ctx.file;
        let mut out = Vec::new();
        for (i, code) in f.code.iter().enumerate() {
            if f.in_test[i] {
                continue;
            }
            let line = i + 1;
            for (pat, what) in METHOD_PATTERNS {
                if code.contains(pat) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        line,
                        self.id(),
                        format!(
                            "{what}: propagate a `Result` (taxitrace_core::Error or a local \
                             error enum) or make the invariant impossible by construction"
                        ),
                        &f.raw[i],
                    ));
                }
            }
            for (pat, what) in MACRO_PATTERNS {
                if !find_word(code, pat).is_empty() {
                    out.push(Diagnostic::new(
                        &f.rel,
                        line,
                        self.id(),
                        format!("{what}: return an error for recoverable states; reserve \
                                 aborts for binaries"),
                        &f.raw[i],
                    ));
                }
            }
            if let Some(col) = call_result_index(code) {
                out.push(Diagnostic::new(
                    &f.rel,
                    line,
                    self.id(),
                    format!(
                        "integer-literal index into a call result (col {col}) assumes a \
                         length the callee does not promise: use `.get(..)` / `.first()` \
                         and handle `None`"
                    ),
                    &f.raw[i],
                ));
            }
        }
        out
    }
}

/// Finds `)[<digits>]` — indexing a call result with a literal index.
fn call_result_index(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (i, w) in bytes.windows(2).enumerate() {
        if w == b")[" {
            let rest = &bytes[i + 2..];
            let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            if digits > 0 && rest.get(digits) == Some(&b']') {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        PanicFree.check(&FileCtx { file: &f, krate: "x", kind: FileKind::Lib })
    }

    #[test]
    fn flags_unwrap_and_expect() {
        assert_eq!(check("let x = o.unwrap();").len(), 1);
        assert_eq!(check("let x = o.expect(\"msg\");").len(), 1);
    }

    #[test]
    fn flags_macros_with_word_boundaries() {
        assert_eq!(check("panic!(\"boom\")").len(), 1);
        assert!(check("dont_panic!(\"ok\")").is_empty());
    }

    #[test]
    fn skips_comments_strings_and_tests() {
        assert!(check("// x.unwrap() in a comment").is_empty());
        assert!(check("let s = \"never .unwrap() me\";").is_empty());
        assert!(check("#[cfg(test)]\nmod t { fn f() { x.unwrap(); } }").is_empty());
    }

    #[test]
    fn flags_call_result_literal_index() {
        assert_eq!(check("let (e, _) = graph.neighbors(n)[0];").len(), 1);
        assert!(check("let v = arr[0];").is_empty(), "plain indexing is not flagged");
    }

    #[test]
    fn bins_may_panic() {
        let f = SourceFile::scan("crates/x/src/bin/cli.rs", "let x = o.unwrap();");
        let out = PanicFree.check(&FileCtx { file: &f, krate: "x", kind: FileKind::Bin });
        assert!(out.is_empty());
    }
}
