//! `metrics-name-drift`: every metric name that reaches taxitrace-obs must
//! come from the checked-in registry `crates/lint/metrics.registry`.
//!
//! The obs JSON snapshot is schema v1 and golden-file tested; a typo'd or
//! ad-hoc metric name would fork that schema silently (dashboards read one
//! name, the code writes another). This rule cross-checks every literal
//! passed to `.counter("…")`, `.gauge("…")`, `.histogram("…", …)` and
//! `.span("…")` — registrations *and* snapshot reads — against the
//! registry. Dynamic names built with `format!` are matched by replacing
//! each `{…}` placeholder with `*`, which registry entries may carry as a
//! trailing wildcard (`counter clean.rule_fires.rule*`).
//!
//! The obs crate itself is exempt: it defines the API and exercises it
//! with throwaway names in its own tests and docs. Names flowing through
//! variables cannot be checked lexically and are skipped — prefer literal
//! names precisely so this gate can see them.

use super::{FileCtx, FileKind, Rule};
use crate::diag::Diagnostic;

/// The checked-in metric-name registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// `(kind, pattern)`; a trailing `*` in the pattern matches any suffix.
    entries: Vec<(String, String)>,
}

impl MetricsRegistry {
    /// Parses `kind name` lines; `#` comments and blanks ignored. Kinds:
    /// `counter`, `gauge`, `histogram`, `span`.
    pub fn parse(text: &str) -> Result<MetricsRegistry, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(kind), Some(name), None)
                    if matches!(kind, "counter" | "gauge" | "histogram" | "span") =>
                {
                    entries.push((kind.to_string(), name.to_string()));
                }
                _ => {
                    return Err(format!(
                        "metrics registry line {}: expected `<kind> <name>`, got {line:?}",
                        i + 1
                    ));
                }
            }
        }
        Ok(MetricsRegistry { entries })
    }

    /// Whether `name` (with `*` standing for dynamic segments) is a
    /// registered metric of this kind.
    pub fn contains(&self, kind: &str, name: &str) -> bool {
        self.entries.iter().any(|(k, pattern)| {
            if k != kind {
                return false;
            }
            match pattern.strip_suffix('*') {
                Some(prefix) => name.starts_with(prefix),
                None => name == pattern,
            }
        })
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Debug)]
pub struct MetricsDrift {
    registry: MetricsRegistry,
}

impl MetricsDrift {
    pub fn new(registry: MetricsRegistry) -> MetricsDrift {
        MetricsDrift { registry }
    }
}

const CALLS: [(&str, &str); 4] = [
    (".counter(", "counter"),
    (".gauge(", "gauge"),
    (".histogram(", "histogram"),
    (".span(", "span"),
];

impl Rule for MetricsDrift {
    fn id(&self) -> &'static str {
        "metrics-name-drift"
    }

    fn applies(&self, kind: FileKind) -> bool {
        // Metric names in tests/benches/examples are throwaway — the
        // schema only covers what shipping code publishes.
        matches!(kind, FileKind::Lib | FileKind::Bin)
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        if ctx.krate == "obs" {
            return Vec::new();
        }
        let f = ctx.file;
        let mut out = Vec::new();
        for (i, code) in f.code.iter().enumerate() {
            if f.in_test[i] {
                continue;
            }
            for (pat, kind) in CALLS {
                let mut from = 0;
                while let Some(pos) = code[from..].find(pat) {
                    let at = from + pos;
                    from = at + pat.len();
                    // The first string literal at/after the call column —
                    // also one line down, for wrapped calls.
                    let lit = f
                        .strings_on_line(i + 1)
                        .find(|s| s.col >= at)
                        .or_else(|| f.strings_on_line(i + 2).next());
                    let Some(lit) = lit else { continue };
                    let name = normalize_format_name(&lit.value);
                    if !self.registry.contains(kind, &name) {
                        out.push(Diagnostic::new(
                            &f.rel,
                            i + 1,
                            self.id(),
                            format!(
                                "{kind} name {name:?} is not in crates/lint/\
                                 metrics.registry: add it there (and to the obs schema \
                                 docs) or fix the typo — unregistered names fork the \
                                 metrics schema silently"
                            ),
                            &f.raw[i],
                        ));
                    }
                }
            }
        }
        out
    }
}

/// `format!` templates become wildcards: `clean.rule_fires.rule{}` →
/// `clean.rule_fires.rule*`.
fn normalize_format_name(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut depth = 0u32;
    for c in value.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;
    use crate::source::SourceFile;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::parse(
            "counter sim.sessions\ncounter clean.rule_fires.rule*\nspan study/simulate\n",
        )
        .expect("valid registry")
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        MetricsDrift::new(registry()).check(&FileCtx {
            file: &f,
            krate: "x",
            kind: FileKind::Lib,
        })
    }

    #[test]
    fn registered_names_pass() {
        assert!(check("reg.counter(\"sim.sessions\").add(1);").is_empty());
        assert!(check("let _s = reg.span(\"study/simulate\");").is_empty());
    }

    #[test]
    fn unregistered_name_flagged() {
        assert_eq!(check("reg.counter(\"sim.sesions\").add(1);").len(), 1);
    }

    #[test]
    fn kind_mismatch_flagged() {
        assert_eq!(check("reg.gauge(\"sim.sessions\").set(1);").len(), 1);
    }

    #[test]
    fn format_names_match_wildcards() {
        assert!(check("reg.counter(&format!(\"clean.rule_fires.rule{}\", i)).add(1);")
            .is_empty());
        assert_eq!(
            check("reg.counter(&format!(\"clean.other.rule{}\", i)).add(1);").len(),
            1
        );
    }

    #[test]
    fn wrapped_call_checked_on_next_line() {
        assert_eq!(check("reg\n    .counter(\n    \"nope\").add(1);").len(), 1);
    }

    #[test]
    fn obs_crate_exempt() {
        let f = SourceFile::scan("crates/obs/src/lib.rs", "reg.counter(\"nope\");");
        let out = MetricsDrift::new(registry()).check(&FileCtx {
            file: &f,
            krate: "obs",
            kind: FileKind::Lib,
        });
        assert!(out.is_empty());
    }

    #[test]
    fn registry_rejects_bad_kind() {
        assert!(MetricsRegistry::parse("meter x.y\n").is_err());
    }
}
