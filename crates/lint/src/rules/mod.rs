//! The rule engine.
//!
//! A rule is a pure function from a scanned source file to diagnostics.
//! Adding a rule:
//!
//! 1. create `src/rules/<name>.rs` implementing [`Rule`];
//! 2. register it in [`source_rules`];
//! 3. add known-bad and known-good fixtures under `tests/fixtures/<id>/`
//!    and a case in `tests/rules.rs`;
//! 4. document it in README.md ("Static analysis gates").
//!
//! Rules must only report on the masked code channel (never inside
//! comments or string literals) and must be deterministic: no clocks, no
//! hashing-order iteration, findings sorted by the caller.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod atomics_audit;
mod determinism;
mod lock_discipline;
mod metrics_drift;
mod panic_free;
mod unsafe_audit;
mod workspace_hygiene;

pub use atomics_audit::{sync_usage, AtomicsAudit, SyncEntry, SyncKind, SyncPolicy, SyncRegistry};
pub use determinism::Determinism;
pub use lock_discipline::LockDiscipline;
pub use metrics_drift::{MetricsDrift, MetricsRegistry};
pub use panic_free::PanicFree;
pub use unsafe_audit::UnsafeAudit;
pub use workspace_hygiene::check_manifest;

/// What kind of target a file belongs to — several rules only apply to
/// library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a library crate.
    Lib,
    /// `src/bin/**` — a CLI entry point.
    Bin,
    /// `tests/**` — integration tests (crate-level or workspace-level).
    Test,
    /// `benches/**` — benchmark harnesses.
    Bench,
    /// `examples/**` — runnable examples.
    Example,
}

/// Per-file context handed to every rule.
#[derive(Debug)]
pub struct FileCtx<'a> {
    pub file: &'a SourceFile,
    /// Crate directory name (`roadnet`, `obs`, …); the facade crate at the
    /// workspace root is `taxi-traces`.
    pub krate: &'a str,
    pub kind: FileKind,
}

/// A single lint rule over Rust source.
pub trait Rule {
    /// Stable identifier used in output, `lint:allow(...)` and the
    /// allowlist.
    fn id(&self) -> &'static str;
    /// Which [`FileKind`]s the rule runs on. The default is everything;
    /// rules whose contract only makes sense for shipping code narrow it
    /// (panics are fine in tests, metric names in benches are throwaway).
    fn applies(&self, kind: FileKind) -> bool {
        let _ = kind;
        true
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic>;
}

/// The source-file rules in evaluation order. (`workspace-hygiene` runs
/// separately over `Cargo.toml` manifests.)
pub fn source_rules(registry: MetricsRegistry, sync: SyncRegistry) -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(PanicFree),
        Box::new(Determinism),
        Box::new(UnsafeAudit),
        Box::new(MetricsDrift::new(registry)),
        Box::new(AtomicsAudit::new(sync)),
        Box::new(LockDiscipline),
    ]
}

/// Whether `code[at..at+len]` is a standalone word (no identifier chars
/// hugging it on either side).
pub(crate) fn word_bounded(code: &str, at: usize, len: usize) -> bool {
    let before_ok = at == 0
        || code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
    let after_ok = code[at + len..]
        .chars()
        .next()
        .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
    before_ok && after_ok
}

/// All word-bounded occurrences of `needle` in `code`.
pub(crate) fn find_word(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        if word_bounded(code, at, needle.len()) {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// `… name: ` directly before a type use — field or typed-let binding.
pub(crate) fn ident_before_colon(prefix: &str) -> Option<String> {
    let trimmed = prefix.trim_end();
    let rest = trimmed.strip_suffix(':')?;
    take_trailing_ident(rest)
}

/// `… let [mut] name [: …] = ` directly before a constructor.
pub(crate) fn ident_before_eq(prefix: &str) -> Option<String> {
    let trimmed = prefix.trim_end();
    let rest = trimmed.strip_suffix('=')?;
    let name = take_trailing_ident(rest)?;
    if name == "mut" || name == "let" {
        return None;
    }
    Some(name)
}

pub(crate) fn take_trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let ident: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then_some(ident)
}
