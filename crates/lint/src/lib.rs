//! `taxitrace-lint` — the workspace static-analysis gate.
//!
//! A dependency-free, xtask-style tool that walks every member crate's
//! sources and manifests and enforces the invariants the reproduction's
//! credibility rests on: byte-identical deterministic output, panic-free
//! library code, audited `unsafe`, a non-forking metrics schema, and
//! workspace-pinned dependencies. See README.md §"Static analysis gates"
//! for the rule catalogue and escape hatches.
//!
//! Library layout:
//!
//! * [`source`] — comment/string/raw-string-aware scanner;
//! * [`rules`] — the [`rules::Rule`] trait and the rule set;
//! * [`allow`] — `lint:allow(...)` comments and the committed allowlist;
//! * [`diag`] — structured diagnostics, human and JSON renderings;
//! * [`lint_workspace`] — the entry point the CLI and the meta-test share.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod allow;
pub mod diag;
pub mod rules;
pub mod source;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use diag::Diagnostic;
use rules::{source_rules, FileCtx, FileKind, MetricsRegistry};
use source::SourceFile;

/// Engine failure (I/O or malformed support files) — distinct from lint
/// findings, which are data.
#[derive(Debug)]
pub enum LintError {
    Io { path: PathBuf, error: std::io::Error },
    Config(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, error } => {
                write!(f, "lint: cannot read {}: {error}", path.display())
            }
            LintError::Config(m) => write!(f, "lint: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Everything one gate run produced.
#[derive(Debug)]
pub struct LintReport {
    /// Live findings, sorted by file/line/rule.
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by `lint:allow` comments or the allowlist.
    pub suppressed: Vec<Diagnostic>,
    /// Source files and manifests scanned.
    pub files_scanned: usize,
    /// Allowlist entries that matched nothing (candidates for pruning).
    pub unused_allows: Vec<String>,
}

/// Walks up from `start` to the workspace root (the `Cargo.toml` that
/// declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints the whole workspace under `root` using the committed allowlist
/// (`crates/lint/allowlist.txt`) and metrics registry
/// (`crates/lint/metrics.registry`).
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let allowlist = Allowlist::parse(&read(&root.join("crates/lint/allowlist.txt"))?)
        .map_err(LintError::Config)?;
    let registry = MetricsRegistry::parse(&read(&root.join("crates/lint/metrics.registry"))?)
        .map_err(LintError::Config)?;
    if registry.is_empty() {
        return Err(LintError::Config(
            "metrics registry is empty — the drift rule would reject every metric".into(),
        ));
    }
    lint_workspace_with(root, &allowlist, registry)
}

/// [`lint_workspace`] with explicit support files (for tests).
pub fn lint_workspace_with(
    root: &Path,
    allowlist: &Allowlist,
    registry: MetricsRegistry,
) -> Result<LintReport, LintError> {
    let rules = source_rules(registry);
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut files_scanned = 0usize;

    for path in workspace_rust_files(root)? {
        let rel = rel_path(root, &path);
        let file = SourceFile::scan(&rel, &read(&path)?);
        files_scanned += 1;
        let ctx = FileCtx {
            file: &file,
            krate: crate_of(&rel),
            kind: kind_of(&rel),
        };
        for rule in &rules {
            for d in rule.check(&ctx) {
                if allow::inline_allowed(&file, d.line, d.rule) || allowlist.allows(&d) {
                    suppressed.push(d);
                } else {
                    findings.push(d);
                }
            }
        }
    }

    for manifest in member_manifests(root)? {
        let rel = rel_path(root, &manifest);
        files_scanned += 1;
        for d in rules::check_manifest(&rel, &read(&manifest)?) {
            if allowlist.allows(&d) {
                suppressed.push(d);
            } else {
                findings.push(d);
            }
        }
    }

    findings.sort();
    suppressed.sort();
    let unused_allows: Vec<String> = allowlist
        .unused(&suppressed)
        .into_iter()
        .map(|(rule, path)| format!("{rule} {path}"))
        .collect();
    Ok(LintReport { findings, suppressed, files_scanned, unused_allows })
}

/// Lints a single source text as library code of crate `krate` — the
/// fixture-test entry point.
pub fn lint_source(rel: &str, krate: &str, text: &str, registry: MetricsRegistry) -> Vec<Diagnostic> {
    let file = SourceFile::scan(rel, text);
    let ctx = FileCtx { file: &file, krate, kind: kind_of(rel) };
    let mut out = Vec::new();
    for rule in source_rules(registry) {
        for d in rule.check(&ctx) {
            if !allow::inline_allowed(&file, d.line, d.rule) {
                out.push(d);
            }
        }
    }
    out.sort();
    out
}

/// Every `.rs` file under `crates/*/src` and the facade crate's `src/`,
/// in deterministic (sorted) order. `third_party/` shims and `target/` are
/// never visited.
fn workspace_rust_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    for member in sorted_dirs(&root.join("crates"))? {
        collect_rs(&member.join("src"), &mut out)?;
    }
    collect_rs(&root.join("src"), &mut out)?;
    Ok(out)
}

/// Member crate manifests, sorted.
fn member_manifests(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    for member in sorted_dirs(&root.join("crates"))? {
        let manifest = member.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    Ok(out)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = fs::read_dir(dir).map_err(|error| LintError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| LintError::Io { path: dir.to_path_buf(), error })?;
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|error| LintError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| LintError::Io { path: dir.to_path_buf(), error })?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|error| LintError::Io { path: path.to_path_buf(), error })
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// `crates/<name>/…` → `<name>`; the facade crate's `src/` → `taxi-traces`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("taxi-traces")
}

fn kind_of(rel: &str) -> FileKind {
    if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_kind_classification() {
        assert_eq!(crate_of("crates/roadnet/src/graph.rs"), "roadnet");
        assert_eq!(crate_of("src/lib.rs"), "taxi-traces");
        assert_eq!(kind_of("crates/bench/src/bin/repro.rs"), FileKind::Bin);
        assert_eq!(kind_of("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(kind_of("crates/geo/src/lib.rs"), FileKind::Lib);
    }
}
