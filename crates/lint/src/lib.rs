//! `taxitrace-lint` — the workspace static-analysis gate.
//!
//! A dependency-free, xtask-style tool that walks every member crate's
//! sources and manifests and enforces the invariants the reproduction's
//! credibility rests on: byte-identical deterministic output, panic-free
//! library code, audited `unsafe`, a non-forking metrics schema, and
//! workspace-pinned dependencies. See README.md §"Static analysis gates"
//! for the rule catalogue and escape hatches.
//!
//! Library layout:
//!
//! * [`source`] — comment/string/raw-string-aware scanner;
//! * [`rules`] — the [`rules::Rule`] trait and the rule set;
//! * [`allow`] — `lint:allow(...)` comments and the committed allowlist;
//! * [`diag`] — structured diagnostics, human and JSON renderings;
//! * [`lint_workspace`] — the entry point the CLI and the meta-test share.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod allow;
pub mod diag;
pub mod rules;
pub mod source;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use diag::Diagnostic;
use rules::{source_rules, FileCtx, FileKind, MetricsRegistry, SyncRegistry};
use source::SourceFile;

/// Engine failure (I/O or malformed support files) — distinct from lint
/// findings, which are data.
#[derive(Debug)]
pub enum LintError {
    Io { path: PathBuf, error: std::io::Error },
    Config(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, error } => {
                write!(f, "lint: cannot read {}: {error}", path.display())
            }
            LintError::Config(m) => write!(f, "lint: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Everything one gate run produced.
#[derive(Debug)]
pub struct LintReport {
    /// Live findings, sorted by file/line/rule.
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by `lint:allow` comments or the allowlist.
    pub suppressed: Vec<Diagnostic>,
    /// Source files and manifests scanned.
    pub files_scanned: usize,
    /// Allowlist entries that matched nothing (candidates for pruning).
    pub unused_allows: Vec<String>,
}

/// Walks up from `start` to the workspace root (the `Cargo.toml` that
/// declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints the whole workspace under `root` using the committed allowlist
/// (`crates/lint/allowlist.txt`), metrics registry
/// (`crates/lint/metrics.registry`) and shared-state registry
/// (`crates/lint/sync.registry`).
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let allowlist = Allowlist::parse(&read(&root.join("crates/lint/allowlist.txt"))?)
        .map_err(LintError::Config)?;
    let registry = MetricsRegistry::parse(&read(&root.join("crates/lint/metrics.registry"))?)
        .map_err(LintError::Config)?;
    if registry.is_empty() {
        return Err(LintError::Config(
            "metrics registry is empty — the drift rule would reject every metric".into(),
        ));
    }
    let sync = SyncRegistry::parse(&read(&root.join("crates/lint/sync.registry"))?)
        .map_err(LintError::Config)?;
    if sync.is_empty() {
        return Err(LintError::Config(
            "sync registry is empty — the atomics audit would reject every declaration".into(),
        ));
    }
    lint_workspace_with(root, &allowlist, registry, sync)
}

/// [`lint_workspace`] with explicit support files (for tests).
pub fn lint_workspace_with(
    root: &Path,
    allowlist: &Allowlist,
    registry: MetricsRegistry,
    sync: SyncRegistry,
) -> Result<LintReport, LintError> {
    let rules = source_rules(registry, sync.clone());
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut files_scanned = 0usize;
    let mut sync_used: Vec<(String, String)> = Vec::new();

    for path in workspace_rust_files(root)? {
        let rel = rel_path(root, &path);
        let file = SourceFile::scan(&rel, &read(&path)?);
        files_scanned += 1;
        let ctx = FileCtx {
            file: &file,
            krate: crate_of(&rel),
            kind: kind_of(&rel),
        };
        sync_used.extend(rules::sync_usage(&file));
        for rule in &rules {
            if !rule.applies(ctx.kind) {
                continue;
            }
            for d in rule.check(&ctx) {
                if allow::inline_allowed(&file, d.line, d.rule) || allowlist.allows(&d) {
                    suppressed.push(d);
                } else {
                    findings.push(d);
                }
            }
        }
    }

    // Registry staleness: an inventory that outlives the code it described
    // is worse than none. Entries must match a declaration or a `sync(...)`
    // citation somewhere in the scanned tree.
    for entry in sync.entries() {
        let used = sync_used.iter().any(|(f, n)| *f == entry.file && *n == entry.name);
        if !used {
            let d = Diagnostic::new(
                "crates/lint/sync.registry",
                entry.line,
                "atomics-audit",
                format!(
                    "stale sync registry entry `{}:{}`: no declaration or sync(...) \
                     citation in the scanned tree — remove the line or fix the key",
                    entry.file, entry.name
                ),
                &format!("{} {}:{}", entry.kind_str(), entry.file, entry.name),
            );
            if allowlist.allows(&d) {
                suppressed.push(d);
            } else {
                findings.push(d);
            }
        }
    }

    for manifest in member_manifests(root)? {
        let rel = rel_path(root, &manifest);
        files_scanned += 1;
        for d in rules::check_manifest(&rel, &read(&manifest)?) {
            if allowlist.allows(&d) {
                suppressed.push(d);
            } else {
                findings.push(d);
            }
        }
    }

    findings.sort();
    suppressed.sort();
    let unused_allows: Vec<String> = allowlist
        .unused(&suppressed)
        .into_iter()
        .map(|(rule, path)| format!("{rule} {path}"))
        .collect();
    Ok(LintReport { findings, suppressed, files_scanned, unused_allows })
}

/// Lints a single source text as code of crate `krate` — the fixture-test
/// entry point. The file kind is derived from `rel` as in the workspace
/// walk.
pub fn lint_source(
    rel: &str,
    krate: &str,
    text: &str,
    registry: MetricsRegistry,
    sync: SyncRegistry,
) -> Vec<Diagnostic> {
    let file = SourceFile::scan(rel, text);
    let ctx = FileCtx { file: &file, krate, kind: kind_of(rel) };
    let mut out = Vec::new();
    for rule in source_rules(registry, sync) {
        if !rule.applies(ctx.kind) {
            continue;
        }
        for d in rule.check(&ctx) {
            if !allow::inline_allowed(&file, d.line, d.rule) {
                out.push(d);
            }
        }
    }
    out.sort();
    out
}

/// The source subtrees scanned per crate (and at the workspace root).
const SOURCE_SUBDIRS: [&str; 4] = ["src", "tests", "benches", "examples"];

/// Every `.rs` file under `crates/*/{src,tests,benches,examples}` and the
/// same subtrees at the workspace root, in deterministic (sorted) order.
/// `third_party/` shims, `target/` and lint `fixtures/` directories (known-
/// bad inputs by design) are never visited.
fn workspace_rust_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    for member in sorted_dirs(&root.join("crates"))? {
        for sub in SOURCE_SUBDIRS {
            collect_rs(&member.join(sub), &mut out)?;
        }
    }
    for sub in SOURCE_SUBDIRS {
        collect_rs(&root.join(sub), &mut out)?;
    }
    Ok(out)
}

/// Member crate manifests, sorted.
fn member_manifests(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    for member in sorted_dirs(&root.join("crates"))? {
        let manifest = member.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    Ok(out)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = fs::read_dir(dir).map_err(|error| LintError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| LintError::Io { path: dir.to_path_buf(), error })?;
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|error| LintError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| LintError::Io { path: dir.to_path_buf(), error })?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|error| LintError::Io { path: path.to_path_buf(), error })
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// `crates/<name>/…` → `<name>`; the facade crate's `src/` → `taxi-traces`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("taxi-traces")
}

fn kind_of(rel: &str) -> FileKind {
    let in_tree = |tree: &str| {
        rel.starts_with(&format!("{tree}/")) || rel.contains(&format!("/{tree}/"))
    };
    if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileKind::Bin
    } else if in_tree("tests") {
        FileKind::Test
    } else if in_tree("benches") {
        FileKind::Bench
    } else if in_tree("examples") {
        FileKind::Example
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_kind_classification() {
        assert_eq!(crate_of("crates/roadnet/src/graph.rs"), "roadnet");
        assert_eq!(crate_of("src/lib.rs"), "taxi-traces");
        assert_eq!(crate_of("tests/end_to_end.rs"), "taxi-traces");
        assert_eq!(kind_of("crates/bench/src/bin/repro.rs"), FileKind::Bin);
        assert_eq!(kind_of("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(kind_of("crates/geo/src/lib.rs"), FileKind::Lib);
        assert_eq!(kind_of("tests/end_to_end.rs"), FileKind::Test);
        assert_eq!(kind_of("crates/store/tests/codec_props.rs"), FileKind::Test);
        assert_eq!(kind_of("crates/bench/benches/pipeline.rs"), FileKind::Bench);
        assert_eq!(kind_of("examples/quickstart.rs"), FileKind::Example);
    }
}
