//! Golden-file test for the JSON diagnostic format. CI and scripts parse
//! this output (`--format json`), so its shape is part of the tool's
//! contract: versioned, sorted, and stable across runs. Regenerate the
//! golden with:
//!
//! ```text
//! BLESS=1 cargo test -p taxitrace-lint --test golden
//! ```

use taxitrace_lint::diag::{to_json, Diagnostic};
use taxitrace_lint::lint_source;
use taxitrace_lint::rules::{check_manifest, MetricsRegistry, SyncRegistry};

fn fixture(rel: &str) -> String {
    let path = format!("{}/tests/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn json_output_matches_golden() {
    let registry =
        MetricsRegistry::parse(include_str!("../metrics.registry")).expect("registry parses");
    let sync =
        SyncRegistry::parse(include_str!("fixtures/sync.registry")).expect("sync registry parses");
    let mut findings: Vec<Diagnostic> = Vec::new();
    let dirs =
        ["panic_free", "determinism", "unsafe_audit", "metrics_drift", "atomics_audit",
         "lock_discipline"];
    for dir in dirs {
        findings.extend(lint_source(
            &format!("crates/fixture/src/{dir}_bad.rs"),
            "fixture",
            &fixture(&format!("{dir}/bad.rs")),
            registry.clone(),
            sync.clone(),
        ));
    }
    findings.extend(check_manifest(
        "crates/fixture/Cargo.toml",
        &fixture("workspace_hygiene/bad.toml"),
    ));
    findings.sort();
    let got = to_json(&findings);

    let golden_path = format!("{}/tests/golden.json", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("committed golden file");
    assert_eq!(got, want, "JSON output drifted from tests/golden.json (BLESS=1 to regenerate)");
}
