//! Fixture-driven self-tests: every rule must fire on its known-bad
//! fixture and stay silent on the known-good one. The fixtures under
//! `tests/fixtures/` double as documentation of what each rule means.

use taxitrace_lint::rules::{check_manifest, MetricsRegistry, SyncRegistry};
use taxitrace_lint::lint_source;

fn fixture(rel: &str) -> String {
    let path = format!("{}/tests/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn registry() -> MetricsRegistry {
    MetricsRegistry::parse(include_str!("../metrics.registry")).expect("committed registry parses")
}

fn sync_registry() -> SyncRegistry {
    SyncRegistry::parse(include_str!("fixtures/sync.registry")).expect("fixture registry parses")
}

/// Findings of one rule for a fixture linted as library code.
fn findings(dir: &str, file: &str, rule: &str) -> Vec<usize> {
    lint_source(
        &format!("crates/fixture/src/{dir}_{file}"),
        "fixture",
        &fixture(&format!("{dir}/{file}")),
        registry(),
        sync_registry(),
    )
    .into_iter()
    .filter(|d| d.rule == rule)
    .map(|d| d.line)
    .collect()
}

#[test]
fn panic_free_flags_every_bad_construct() {
    let lines = findings("panic_free", "bad.rs", "panic-free-library");
    // unwrap, expect, four abort macros, and the call-result index.
    assert_eq!(lines, vec![4, 8, 13, 14, 15, 16, 22]);
}

#[test]
fn panic_free_accepts_good_fixture() {
    assert!(findings("panic_free", "good.rs", "panic-free-library").is_empty());
}

#[test]
fn determinism_flags_clocks_rng_and_hash_iteration() {
    let lines = findings("determinism", "bad.rs", "determinism");
    // Two clocks on line 8, thread_rng on 12, both iteration sites.
    assert_eq!(lines, vec![8, 8, 12, 21, 26]);
}

#[test]
fn determinism_accepts_good_fixture() {
    assert!(findings("determinism", "good.rs", "determinism").is_empty());
}

#[test]
fn unsafe_audit_requires_nearby_safety_comment() {
    let lines = findings("unsafe_audit", "bad.rs", "unsafe-audit");
    assert_eq!(lines, vec![4, 12]);
}

#[test]
fn unsafe_audit_accepts_good_fixture() {
    assert!(findings("unsafe_audit", "good.rs", "unsafe-audit").is_empty());
}

#[test]
fn metrics_drift_flags_unregistered_names() {
    let lines = findings("metrics_drift", "bad.rs", "metrics-name-drift");
    // Typo, kind mismatch, unknown span, unregistered format! family.
    assert_eq!(lines, vec![5, 6, 7, 9]);
}

#[test]
fn metrics_drift_accepts_good_fixture() {
    assert!(findings("metrics_drift", "good.rs", "metrics-name-drift").is_empty());
}

#[test]
fn atomics_audit_flags_every_bad_construct() {
    let lines = findings("atomics_audit", "bad.rs", "atomics-audit");
    // Unregistered static, unannotated load, Relaxed weakening an acqrel
    // cell, unjustified SeqCst, justification-free marker, orphan ordering.
    assert_eq!(lines, vec![6, 15, 20, 25, 30, 35]);
}

#[test]
fn atomics_audit_accepts_good_fixture() {
    assert!(findings("atomics_audit", "good.rs", "atomics-audit").is_empty());
}

#[test]
fn lock_discipline_flags_nested_and_held_across_call() {
    let lines = findings("lock_discipline", "bad.rs", "lock-discipline");
    // Nested acquisition, then an outward call under the guard.
    assert_eq!(lines, vec![15, 22]);
}

#[test]
fn lock_discipline_accepts_good_fixture() {
    assert!(findings("lock_discipline", "good.rs", "lock-discipline").is_empty());
}

#[test]
fn workspace_hygiene_flags_path_and_version_deps() {
    let out = check_manifest("crates/fixture/Cargo.toml", &fixture("workspace_hygiene/bad.toml"));
    assert!(
        out.iter().all(|d| d.rule == "workspace-hygiene"),
        "unexpected rules: {out:?}"
    );
    let lines: Vec<usize> = out.iter().map(|d| d.line).collect();
    assert!(lines.contains(&10), "path dep not flagged: {lines:?}");
    assert!(lines.contains(&11), "version dep not flagged: {lines:?}");
    assert!(lines.contains(&14), "dev path dep not flagged: {lines:?}");
}

#[test]
fn workspace_hygiene_accepts_good_manifest() {
    let out = check_manifest("crates/fixture/Cargo.toml", &fixture("workspace_hygiene/good.toml"));
    assert!(out.is_empty(), "false positives: {out:?}");
}
