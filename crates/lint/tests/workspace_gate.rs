//! Meta-test: the live workspace must pass its own gate. This is the same
//! check `scripts/verify.sh` runs via the CLI, wired into `cargo test` so a
//! regression cannot land without someone noticing.

use std::path::Path;

use taxitrace_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_passes_the_gate() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = lint_workspace(&root).expect("gate runs");
    assert!(
        report.findings.is_empty(),
        "the workspace no longer passes taxitrace-lint --deny:\n{}",
        taxitrace_lint::diag::to_human(&report.findings)
    );
    // The gate actually looked at the tree (all 14 member crates plus the
    // facade and the manifests), not an empty directory.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    // Committed suppressions must stay live; prune them when they die.
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allows
    );
}
