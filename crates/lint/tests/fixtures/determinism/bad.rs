// Known-bad fixture: ambient clocks, ambient randomness, hash-order
// iteration feeding output.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn clocks() -> (SystemTime, Instant) {
    (SystemTime::now(), Instant::now())
}

pub fn ambient_randomness() -> u64 {
    rand::thread_rng().gen()
}

pub struct Table {
    cells: HashMap<u64, f64>,
}

impl Table {
    pub fn export(&self) -> Vec<(u64, f64)> {
        self.cells.iter().map(|(k, v)| (*k, *v)).collect()
    }

    pub fn sum(&self) -> f64 {
        let mut total = 0.0;
        for (_, v) in &self.cells {
            total += v;
        }
        total
    }
}
