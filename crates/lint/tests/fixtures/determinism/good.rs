// Known-good fixture: ordered collections and lookup-only hash maps.

use std::collections::{BTreeMap, HashMap};

pub struct Table {
    cells: BTreeMap<u64, f64>,
}

impl Table {
    // BTreeMap iteration is ordered — never flagged.
    pub fn export(&self) -> Vec<(u64, f64)> {
        self.cells.iter().map(|(k, v)| (*k, *v)).collect()
    }
}

// A HashMap used only for point lookups is fine: no iteration order leaks.
pub fn lookup(index: &HashMap<u64, usize>, key: u64) -> Option<usize> {
    index.get(&key).copied()
}

// Sorted-before-emitting is acceptable with a recorded justification.
pub fn sorted_keys(index: &HashMap<u64, usize>) -> Vec<u64> {
    // lint:allow(determinism): hash order is erased by the sort below
    let mut keys: Vec<u64> = index.keys().copied().collect();
    keys.sort_unstable();
    keys
}
