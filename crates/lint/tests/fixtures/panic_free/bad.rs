// Known-bad fixture: every construct the panic-free-library rule flags.

pub fn unwraps(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn expects(r: Result<u32, ()>) -> u32 {
    r.expect("always ok")
}

pub fn aborts(x: u32) -> u32 {
    match x {
        0 => panic!("zero"),
        1 => unreachable!("one"),
        2 => todo!(),
        3 => unimplemented!(),
        n => n,
    }
}

pub fn indexes_call_result(g: &Graph, n: Node) -> Edge {
    g.neighbors(n)[0]
}
