// Known-good fixture: fallible code the panic-free-library rule accepts.

pub fn propagates(o: Option<u32>) -> Result<u32, &'static str> {
    o.ok_or("missing value")
}

// A suppressed site with a justification is fine.
pub fn justified(v: &[u32]) -> u32 {
    // lint:allow(panic-free-library): caller guarantees non-empty input
    *v.last().expect("non-empty")
}

// Mentions in comments and strings are ignored: .unwrap() / panic!.
pub fn documented() -> &'static str {
    "never call .unwrap() or panic! here"
}

// Plain literal indexing is not flagged; bounds are local concerns.
pub fn first(v: &[u32; 4]) -> u32 {
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
