// Known-good fixture: every name (static or format!-built) is registered.

pub fn record(reg: &Registry) {
    reg.counter("sim.sessions").inc();
    let _span = reg.span("study/simulate");
    for i in 0..3 {
        reg.counter(&format!("clean.rule_fires.rule{}", i + 1)).inc();
    }
    reg.histogram(
        "exec.worker_tasks",
        &[1.0, 2.0, 4.0],
    );
}
