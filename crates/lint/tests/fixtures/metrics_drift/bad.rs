// Known-bad fixture: metric names absent from the registry, a kind
// mismatch, and an unregistered format! family.

pub fn record(reg: &Registry) {
    reg.counter("sim.sesions").inc(); // typo: not in the registry
    reg.gauge("sim.sessions").set(1.0); // registered as a counter, not a gauge
    let _span = reg.span("study/unknown_stage");
    for i in 0..3 {
        reg.counter(&format!("clean.unregistered.rule{}", i)).inc();
    }
}
