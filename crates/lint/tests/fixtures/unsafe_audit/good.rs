// Known-good fixture: every unsafe block states its invariant.

#![deny(unsafe_code)]

pub fn deref(ptr: *const u32) -> u32 {
    // SAFETY: caller contract requires ptr to be valid for reads and
    // aligned; upheld by the only call site in `checked_deref`.
    unsafe { *ptr }
}

pub fn inline(ptr: *const u32) -> u32 {
    unsafe { *ptr } // SAFETY: ptr validated by the bounds check above
}
