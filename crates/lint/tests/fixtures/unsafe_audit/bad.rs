// Known-bad fixture: unsafe without a SAFETY justification.

pub fn deref(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

// A SAFETY comment too far above does not count.
// SAFETY: this one is five lines away


pub fn too_far(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}
