//! Known-good fixture for `lock-discipline`: one lock at a time, calls
//! only after the guard drops, and a justified deliberate hold.
use std::sync::{Mutex, PoisonError};

pub struct Maps {
    a: Mutex<Vec<u32>>,
    b: Mutex<Vec<u32>>,
}

fn rebuild_index() {}

impl Maps {
    pub fn sequential(&self) {
        {
            let mut first = self.a.lock().unwrap_or_else(PoisonError::into_inner);
            first.push(1);
        }
        let mut second = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        second.push(2);
    }

    pub fn call_after_drop(&self) {
        let mut guard = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        guard.push(1);
        drop(guard);
        rebuild_index();
    }

    pub fn temporary_chain(&self) -> usize {
        self.a.lock().unwrap_or_else(PoisonError::into_inner).iter().count()
    }

    pub fn justified_hold(&self) {
        let mut guard = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        guard.push(1);
        // sync(a): the index must be rebuilt before the next writer runs.
        rebuild_index();
    }
}
