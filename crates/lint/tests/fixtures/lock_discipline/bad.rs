//! Known-bad fixture for `lock-discipline`: a nested acquisition and a
//! guard held across an outward call.
use std::sync::{Mutex, PoisonError};

pub struct Maps {
    a: Mutex<Vec<u32>>,
    b: Mutex<Vec<u32>>,
}

fn rebuild_index() {}

impl Maps {
    pub fn nested(&self) {
        let first = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let second = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        drop(second);
        drop(first);
    }

    pub fn held_across_call(&self) {
        let guard = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        rebuild_index();
        drop(guard);
    }
}
