//! Known-good fixture for `atomics-audit`: registered cells, every
//! operation annotated, orderings matching the registered policies.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cell {
    epoch: AtomicU64,
    hits: AtomicU64,
}

impl Cell {
    pub fn read(&self) -> u64 {
        // sync(epoch): Acquire pairs with the writer's Release bump.
        self.epoch.load(Ordering::Acquire)
    }

    pub fn publish(&self) -> u64 {
        // sync(epoch): Release bump publishes the new slot contents.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    pub fn count(&self) {
        // sync(hits): merged by RMW atomicity, read after join.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn try_publish(&self, old: u64) -> bool {
        // sync(epoch): CAS success releases; failure needs no edge.
        self.epoch
            .compare_exchange(old, old + 1, Ordering::Release, Ordering::Relaxed)
            .is_ok()
    }
}
