//! Known-bad fixture for `atomics-audit`: an unregistered cell, a bare
//! operation, orderings that violate the registered policy, and an
//! ordering token the audit cannot attribute to a cell.
use std::sync::atomic::{AtomicU64, Ordering};

static ROGUE: AtomicU64 = AtomicU64::new(0);

pub struct Cell {
    epoch: AtomicU64,
    hits: AtomicU64,
}

impl Cell {
    pub fn unannotated(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub fn weakened(&self) -> u64 {
        // sync(epoch): fast path
        self.epoch.load(Ordering::Relaxed)
    }

    pub fn oversynchronized(&self) {
        // sync(hits): counter
        self.hits.fetch_add(1, Ordering::SeqCst);
    }

    pub fn unjustified_marker(&self) {
        // sync(hits)
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}

pub fn orphan_ordering(f: impl Fn(Ordering)) {
    f(Ordering::SeqCst);
}
