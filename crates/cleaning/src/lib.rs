//! Data cleaning (§IV-B) and taxi-specific trip segmentation (§IV-C).
//!
//! * [`order`] — the §IV-B order repair: route points are sorted once by
//!   server id and once by timestamp; the sequence with the *smaller total
//!   trip distance* is judged correct, and properties are re-aligned to it
//!   with monotonically increasing timestamps.
//! * [`segmentation`] — the paper's Table 2 time-based rules splitting one
//!   all-day engine-on session into driven trip segments (taxi drivers
//!   "can drive almost the whole day without turning off the car engine").
//! * [`filters`] — the §IV-C post filters: segments with fewer than five
//!   route points or longer than 30 km are removed; segments over 40 km are
//!   re-split by rule 5 before filtering.
//! * [`pipeline`] — the composed cleaning pipeline with per-stage audit
//!   counters, plus ground-truth validation helpers the original study
//!   could not have.
//! * [`anomaly`] — post-cleaning invariant checks (position jump, clock
//!   skew, dropout, stuck sensor) backing the record-level quarantine:
//!   sessions cleaning cannot make physically plausible are routed to a
//!   dead-letter ledger instead of poisoning the study.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod anomaly;
mod filters;
mod interpolate;
mod order;
mod pipeline;
mod segmentation;
mod totals;

pub use anomaly::{segment_anomaly, session_anomaly, AnomalyConfig, AnomalyKind};
pub use filters::{FilterConfig, FilterStats};
pub use interpolate::{
    interpolate_gaps, is_synthetic, InterpolateConfig, InterpolateStats,
};
pub use order::{repair_order, ChosenOrder, OrderRepairReport};
pub use pipeline::{
    clean_session, validate_segments, CleanedSession, CleaningConfig, CleaningStats,
    SegmentValidation, TripSegment,
};
pub use segmentation::{
    resplit_rule1, segment_columns, segment_session, segment_session_reference,
    SegmentationConfig, SegmentationReport,
};
pub use totals::CleaningTotals;
