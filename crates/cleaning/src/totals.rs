//! Study-wide cleaning statistics, aggregated across sessions, and their
//! projection into the observability registry.

use serde::{Deserialize, Serialize};
use taxitrace_obs::Registry;

use crate::pipeline::CleaningStats;

/// Aggregated cleaning statistics across all sessions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CleaningTotals {
    pub sessions: usize,
    pub raw_points: usize,
    pub sessions_order_repaired: usize,
    pub rule_fires: [usize; 5],
    pub segments_kept: usize,
    pub segments_too_few_points: usize,
    pub segments_too_long: usize,
}

impl CleaningTotals {
    /// Folds one session's statistics into the totals.
    pub fn absorb(&mut self, stats: &CleaningStats) {
        self.sessions += 1;
        self.raw_points += stats.raw_points;
        if stats.order_repaired {
            self.sessions_order_repaired += 1;
        }
        for (a, b) in self.rule_fires.iter_mut().zip(stats.segmentation.rule_fires) {
            *a += b;
        }
        self.segments_kept += stats.filters.kept;
        self.segments_too_few_points += stats.filters.too_few_points;
        self.segments_too_long += stats.filters.too_long;
    }

    /// Publishes the totals as `clean.*` counters.
    pub fn record_metrics(&self, registry: &Registry) {
        registry.counter("clean.sessions").add(self.sessions as u64);
        registry.counter("clean.raw_points").add(self.raw_points as u64);
        registry
            .counter("clean.order_repaired")
            .add(self.sessions_order_repaired as u64);
        for (i, fires) in self.rule_fires.iter().enumerate() {
            registry
                .counter(&format!("clean.rule_fires.rule{}", i + 1))
                .add(*fires as u64);
        }
        registry.counter("clean.segments_kept").add(self.segments_kept as u64);
        registry
            .counter("clean.segments_too_few_points")
            .add(self.segments_too_few_points as u64);
        registry.counter("clean.segments_too_long").add(self.segments_too_long as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterStats;
    use crate::segmentation::SegmentationReport;

    fn stats() -> CleaningStats {
        CleaningStats {
            raw_points: 100,
            order_repaired: true,
            duplicates_removed: 2,
            segmentation: SegmentationReport { rule_fires: [1, 2, 3, 4, 5] },
            filters: FilterStats { kept: 7, too_few_points: 1, too_long: 2 },
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut totals = CleaningTotals::default();
        totals.absorb(&stats());
        totals.absorb(&stats());
        assert_eq!(totals.sessions, 2);
        assert_eq!(totals.raw_points, 200);
        assert_eq!(totals.sessions_order_repaired, 2);
        assert_eq!(totals.rule_fires, [2, 4, 6, 8, 10]);
        assert_eq!(totals.segments_kept, 14);
    }

    #[test]
    fn record_metrics_publishes_counters() {
        let mut totals = CleaningTotals::default();
        totals.absorb(&stats());
        let registry = Registry::new();
        totals.record_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("clean.sessions"), Some(1));
        assert_eq!(snap.counter("clean.raw_points"), Some(100));
        assert_eq!(snap.counter("clean.rule_fires.rule5"), Some(5));
        assert_eq!(snap.counter("clean.segments_kept"), Some(7));
        assert_eq!(snap.counter("clean.segments_too_long"), Some(2));
    }
}
