use std::ops::Range;

use serde::{Deserialize, Serialize};
use taxitrace_traces::{RoutePoint, TraceColumns};

/// Parameters of the paper's Table 2 time-based segmentation rules.
///
/// | rule | paper wording | implementation |
/// |------|---------------|----------------|
/// | 1 | "distance between route points does not change within three minutes" | a run of consecutive points staying within `freeze_radius_m` of the run start for ≥ `rule1_window_s` |
/// | 2 | "distance change less than three km within time more than seven minutes" | a silent gap between consecutive points with `dt > rule2_gap_s` and movement `< rule24_distance_m` |
/// | 3 | "moved with speed less than 0.002 m/s" | a consecutive pair with pairwise speed `< rule3_speed_ms`; guarded by `dt > rule3_min_gap_s` so ordinary traffic-light waits (≤ 200 s per the paper's own rationale) never split a trip |
/// | 4 | "moved less than 3 km in more than 15 minutes with speed > 0.002 m/s" | a gap with `dt > rule4_gap_s`, movement `< rule24_distance_m`, pairwise speed above `rule3_speed_ms` |
/// | 5 | "trips longer than 40 km re-split with rule 1 at 1.5 minutes" | applied by the pipeline to oversized segments using `rule5_window_s` |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentationConfig {
    /// Rule 1 window, seconds (3 minutes).
    pub rule1_window_s: i64,
    /// Position-freeze radius treated as "distance does not change", metres.
    pub freeze_radius_m: f64,
    /// Rule 2 silent-gap threshold, seconds (7 minutes).
    pub rule2_gap_s: i64,
    /// Rules 2 & 4 movement bound, metres (3 km).
    pub rule24_distance_m: f64,
    /// Rule 3 speed threshold, m/s (0.002).
    pub rule3_speed_ms: f64,
    /// Rule 3 guard: minimum gap before a crawl pair splits, seconds.
    /// The paper's rationale: worst-case traffic-light waits are 200 s.
    pub rule3_min_gap_s: i64,
    /// Rule 4 gap threshold, seconds (15 minutes).
    pub rule4_gap_s: i64,
    /// Rule 5 re-split window, seconds (1.5 minutes).
    pub rule5_window_s: i64,
    /// Rule 5 trigger length, metres (40 km).
    pub rule5_trigger_m: f64,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        Self {
            rule1_window_s: 180,
            freeze_radius_m: 25.0,
            rule2_gap_s: 420,
            rule24_distance_m: 3_000.0,
            rule3_speed_ms: 0.002,
            rule3_min_gap_s: 200,
            rule4_gap_s: 900,
            rule5_window_s: 90,
            rule5_trigger_m: 40_000.0,
        }
    }
}

/// Which rules fired how often during one segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SegmentationReport {
    /// Fire counts for rules 1–5 (index 0 = rule 1).
    pub rule_fires: [usize; 5],
}

impl SegmentationReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &SegmentationReport) {
        for (a, b) in self.rule_fires.iter_mut().zip(other.rule_fires) {
            *a += b;
        }
    }
}

/// Splits an ordered session point stream into driven segments
/// (point-index ranges) using rules 1–4. Rule 5 is applied by the caller to
/// oversized segments via [`resplit_rule1`].
///
/// Returns `(segments, report)` where each segment is a `start..end` index
/// range (end exclusive) into `points`. Stop points themselves belong to no
/// segment.
pub fn segment_session(
    points: &[RoutePoint],
    config: &SegmentationConfig,
) -> (Vec<Range<usize>>, SegmentationReport) {
    segment_columns(&TraceColumns::from_points(points), config)
}

/// Column-buffer variant of [`segment_session`]: the same Table 2 rules over
/// a struct-of-arrays buffer, so the pair loop and rule-1 run scan stream
/// through contiguous coordinate/timestamp columns. Callers that already
/// built a [`TraceColumns`] (the cleaning pipeline builds one per session)
/// avoid re-gathering.
pub fn segment_columns(
    cols: &TraceColumns,
    config: &SegmentationConfig,
) -> (Vec<Range<usize>>, SegmentationReport) {
    let mut report = SegmentationReport::default();
    let n = cols.len();
    if n == 0 {
        return (Vec::new(), report);
    }
    // `stop_gap[i]` marks the gap between points i and i+1 as a stop.
    // Pair-level rules (4, 3, 2) run first so long silent gaps attribute
    // to the specific rule that describes them; the run-based rule 1 then
    // sweeps up heartbeat-sampled frozen dwells.
    let mut stop_gap = vec![false; n.saturating_sub(1)];

    for (i, gap) in stop_gap.iter_mut().enumerate() {
        let dt = cols.dt_s(i, i + 1);
        if dt <= 0 {
            continue;
        }
        let dd = cols.dist(i, i + 1);
        let speed = dd / dt as f64;
        // Rule 4 first (it is the most specific long-gap rule): very long
        // silence with some movement but under 3 km.
        if dt > config.rule4_gap_s
            && dd < config.rule24_distance_m
            && speed > config.rule3_speed_ms
            && !*gap
        {
            *gap = true;
            report.rule_fires[3] += 1;
        }
        // Rule 2: long silence, little movement.
        if dt > config.rule2_gap_s && dd < config.rule24_distance_m && !*gap {
            *gap = true;
            report.rule_fires[1] += 1;
        }
        // Rule 3: stationary crawl beyond the traffic-light guard.
        if dt > config.rule3_min_gap_s && speed < config.rule3_speed_ms && !*gap {
            *gap = true;
            report.rule_fires[2] += 1;
        }
    }

    mark_rule1_columns(cols, 0..n, config.rule1_window_s, config.freeze_radius_m, &mut stop_gap, || {
        report.rule_fires[0] += 1;
    });

    (ranges_from_stop_gaps(n, &stop_gap), report)
}

/// Rule 5: re-splits a single oversized segment with rule 1 at the shorter
/// window. Returns sub-ranges relative to `points` (which should be the
/// oversized segment's slice range offset by `base`).
pub fn resplit_rule1(
    points: &[RoutePoint],
    base: usize,
    config: &SegmentationConfig,
    report: &mut SegmentationReport,
) -> Vec<Range<usize>> {
    let cols = TraceColumns::from_points(points);
    resplit_columns(&cols, 0..cols.len(), config, report)
        .into_iter()
        .map(|r| r.start + base..r.end + base)
        .collect()
}

/// Column-buffer variant of [`resplit_rule1`]: re-splits the sub-range
/// `range` of a whole-session buffer, returning absolute (buffer-indexed)
/// sub-ranges. The pipeline calls this on the session columns it already
/// built, so rule 5 never re-gathers a slice.
pub fn resplit_columns(
    cols: &TraceColumns,
    range: Range<usize>,
    config: &SegmentationConfig,
    report: &mut SegmentationReport,
) -> Vec<Range<usize>> {
    let mut fires = 0usize;
    let mut stop_gap = vec![false; range.len().saturating_sub(1)];
    mark_rule1_columns(cols, range.clone(), config.rule5_window_s, config.freeze_radius_m, &mut stop_gap, || {
        fires += 1;
    });
    report.rule_fires[4] += fires;
    ranges_from_stop_gaps(range.len(), &stop_gap)
        .into_iter()
        .map(|r| r.start + range.start..r.end + range.start)
        .collect()
}

/// Rule 1 core over columns: find runs of points (within `range`) that stay
/// within `radius` of the run's first point for at least `window_s`, and
/// mark every gap inside the run. `stop_gap` is indexed relative to
/// `range.start` and must have `range.len() - 1` entries.
fn mark_rule1_columns(
    cols: &TraceColumns,
    range: Range<usize>,
    window_s: i64,
    radius: f64,
    stop_gap: &mut [bool],
    mut on_fire: impl FnMut(),
) {
    let lo = range.start;
    let hi = range.end;
    let mut i = lo;
    while i + 1 < hi {
        let (ax, ay) = (cols.x[i], cols.y[i]);
        let mut j = i;
        // `hypot` keeps the radius test bit-identical to the reference
        // implementation's `Point::distance`.
        while j + 1 < hi && (cols.x[j + 1] - ax).hypot(cols.y[j + 1] - ay) <= radius {
            j += 1;
        }
        if j > i && cols.dt_s(i, j) >= window_s {
            // Only counts as a rule-1 fire when it marks something a
            // pair rule has not already claimed.
            if stop_gap[i - lo..j - lo].iter().any(|g| !*g) {
                on_fire();
            }
            for g in stop_gap.iter_mut().take(j - lo).skip(i - lo) {
                *g = true;
            }
        }
        i = j.max(i + 1);
    }
}

/// Converts stop-gap markers into driven point ranges. A point adjacent only
/// to stop gaps is excluded.
fn ranges_from_stop_gaps(n: usize, stop_gap: &[bool]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    // `stop_gap` has `n - 1` entries; the appended `true` closes the run
    // after the final point.
    for (i, &gap_after) in stop_gap.iter().chain(std::iter::once(&true)).enumerate().take(n) {
        match start {
            None => {
                if !gap_after {
                    start = Some(i);
                }
            }
            Some(s) => {
                if gap_after {
                    // Current point ends the run (it is included).
                    out.push(s..i + 1);
                    start = None;
                }
            }
        }
    }
    if let Some(s) = start {
        out.push(s..n);
    }
    out
}

/// The original array-of-structs segmentation, kept verbatim as the
/// reference implementation: the criterion A/B bench measures it against
/// [`segment_columns`], and a differential proptest pins both to identical
/// output. Not used by the production pipeline.
pub fn segment_session_reference(
    points: &[RoutePoint],
    config: &SegmentationConfig,
) -> (Vec<Range<usize>>, SegmentationReport) {
    let mut report = SegmentationReport::default();
    let n = points.len();
    if n == 0 {
        return (Vec::new(), report);
    }
    let mut stop_gap = vec![false; n.saturating_sub(1)];

    for i in 0..n.saturating_sub(1) {
        let dt = (points[i + 1].timestamp - points[i].timestamp).secs();
        let dd = points[i].pos.distance(points[i + 1].pos);
        if dt <= 0 {
            continue;
        }
        let speed = dd / dt as f64;
        if dt > config.rule4_gap_s
            && dd < config.rule24_distance_m
            && speed > config.rule3_speed_ms
            && !stop_gap[i]
        {
            stop_gap[i] = true;
            report.rule_fires[3] += 1;
        }
        if dt > config.rule2_gap_s && dd < config.rule24_distance_m && !stop_gap[i] {
            stop_gap[i] = true;
            report.rule_fires[1] += 1;
        }
        if dt > config.rule3_min_gap_s && speed < config.rule3_speed_ms && !stop_gap[i] {
            stop_gap[i] = true;
            report.rule_fires[2] += 1;
        }
    }

    mark_rule1_reference(points, config.rule1_window_s, config.freeze_radius_m, &mut stop_gap, || {
        report.rule_fires[0] += 1;
    });

    (ranges_from_stop_gaps(n, &stop_gap), report)
}

/// Rule 1 core of the reference implementation (struct-iterating).
fn mark_rule1_reference(
    points: &[RoutePoint],
    window_s: i64,
    radius: f64,
    stop_gap: &mut [bool],
    mut on_fire: impl FnMut(),
) {
    let n = points.len();
    let mut i = 0;
    while i + 1 < n {
        let anchor = points[i].pos;
        let mut j = i;
        while j + 1 < n && points[j + 1].pos.distance(anchor) <= radius {
            j += 1;
        }
        if j > i {
            let dur = (points[j].timestamp - points[i].timestamp).secs();
            if dur >= window_s {
                if stop_gap[i..j].iter().any(|g| !*g) {
                    on_fire();
                }
                for g in stop_gap.iter_mut().take(j).skip(i) {
                    *g = true;
                }
            }
        }
        i = j.max(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pt(t: i64, x: f64) -> RoutePoint {
        RoutePoint {
            point_id: t as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, 0.0),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: 30.0,
            heading_deg: 90.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: t as u32, element: None },
        }
    }

    /// Drive, stop frozen for 10 minutes (heartbeats), drive again.
    #[test]
    fn rule1_splits_long_frozen_stop() {
        let mut pts = Vec::new();
        for k in 0..5 {
            pts.push(pt(k * 30, k as f64 * 200.0)); // driving east
        }
        // Frozen at x = 800 for 600 s, heartbeat every 70 s.
        for k in 0..9 {
            pts.push(pt(150 + k * 70, 800.0));
        }
        for k in 0..5 {
            pts.push(pt(150 + 8 * 70 + 30 + k * 30, 800.0 + (k + 1) as f64 * 200.0));
        }
        let (segs, report) = segment_session(&pts, &SegmentationConfig::default());
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert!(report.rule_fires[0] >= 1, "rule 1 fired");
    }

    /// A 60 s traffic-light wait must NOT split the trip (paper rationale).
    #[test]
    fn short_light_wait_does_not_split() {
        let mut pts = Vec::new();
        for k in 0..4 {
            pts.push(pt(k * 20, k as f64 * 150.0));
        }
        // Stationary 60 s at x = 450 (two frozen points).
        pts.push(pt(80, 450.0));
        pts.push(pt(140, 450.0));
        for k in 0..4 {
            pts.push(pt(160 + k * 20, 450.0 + (k + 1) as f64 * 150.0));
        }
        let (segs, _) = segment_session(&pts, &SegmentationConfig::default());
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert_eq!(segs[0], 0..pts.len());
    }

    /// Device slept 10 minutes while parked: rule 2 splits at the gap.
    #[test]
    fn rule2_splits_silent_gap() {
        let mut pts = Vec::new();
        for k in 0..5 {
            pts.push(pt(k * 30, k as f64 * 200.0));
        }
        // Silence 600 s, car moved 80 m (repositioned in parking lot).
        pts.push(pt(120 + 600, 880.0));
        for k in 0..5 {
            pts.push(pt(120 + 600 + (k + 1) * 30, 880.0 + (k + 1) as f64 * 200.0));
        }
        let (segs, report) = segment_session(&pts, &SegmentationConfig::default());
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert_eq!(report.rule_fires[1], 1, "rule 2 fired once");
    }

    /// Rule 3: frozen pair with a gap beyond the 200 s guard.
    #[test]
    fn rule3_splits_long_crawl_pair() {
        let pts = vec![
            pt(0, 0.0),
            pt(30, 300.0),
            pt(60, 600.0),
            // 240 s gap, zero movement (frozen fix), under rule-1 window?
            // 240 s ≥ 180 s would also fire rule 1 — use distinct anchor
            // movement of 30 m so rule 1's 25 m radius does not cover it.
            pt(300, 630.0),
            pt(330, 930.0),
            pt(360, 1230.0),
        ];
        let cfg = SegmentationConfig::default();
        let (segs, report) = segment_session(&pts, &cfg);
        // 30 m / 240 s = 0.125 m/s — above 0.002, so rule 3 must NOT fire.
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert_eq!(report.rule_fires[2], 0);

        // Now an exactly-frozen pair over 240 s: rule 3 fires.
        let pts2 = vec![
            pt(0, 0.0),
            pt(30, 300.0),
            pt(60, 600.0),
            pt(300, 600.0),
            pt(330, 900.0),
            pt(360, 1200.0),
        ];
        let (segs2, report2) = segment_session(&pts2, &cfg);
        assert_eq!(segs2.len(), 2, "{segs2:?}");
        assert!(report2.rule_fires[0] + report2.rule_fires[2] >= 1);
    }

    /// Rule 4: 20-minute silence with 2 km creep splits.
    #[test]
    fn rule4_splits_slow_creep_gap() {
        let mut pts = Vec::new();
        for k in 0..5 {
            pts.push(pt(k * 30, k as f64 * 200.0));
        }
        pts.push(pt(120 + 1200, 800.0 + 2000.0)); // 2 km over 20 min
        for k in 0..5 {
            pts.push(pt(120 + 1200 + (k + 1) * 30, 2800.0 + (k + 1) as f64 * 200.0));
        }
        let (segs, report) = segment_session(&pts, &SegmentationConfig::default());
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert_eq!(report.rule_fires[3], 1, "rule 4 fired once");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cfg = SegmentationConfig::default();
        let (segs, _) = segment_session(&[], &cfg);
        assert!(segs.is_empty());
        let (segs, _) = segment_session(&[pt(0, 0.0)], &cfg);
        assert!(segs.is_empty(), "single point is no driven segment");
        let (segs, _) = segment_session(&[pt(0, 0.0), pt(10, 100.0)], &cfg);
        assert_eq!(segs, vec![0..2]);
    }

    #[test]
    fn rule5_resplit() {
        // A long "segment" with a 2-minute frozen pause in the middle.
        let mut pts = Vec::new();
        for k in 0..5 {
            pts.push(pt(k * 30, k as f64 * 300.0));
        }
        pts.push(pt(120 + 120, 1200.0)); // frozen 120 s (≥ rule5 90 s window)
        for k in 0..5 {
            pts.push(pt(240 + (k + 1) * 30, 1200.0 + (k + 1) as f64 * 300.0));
        }
        let cfg = SegmentationConfig::default();
        let mut report = SegmentationReport::default();
        let subs = resplit_rule1(&pts, 100, &cfg, &mut report);
        assert_eq!(subs.len(), 2, "{subs:?}");
        assert_eq!(report.rule_fires[4], 1);
        assert!(subs[0].start >= 100, "offsets are rebased");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn mk(t: i64, x: f64) -> RoutePoint {
        RoutePoint {
            point_id: t as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, 0.0),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: 0.0,
            heading_deg: 0.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: 0, element: None },
        }
    }

    proptest! {
        /// Segments are sorted, non-overlapping, within bounds, and at
        /// least 2 points long.
        #[test]
        fn segments_well_formed(
            steps in proptest::collection::vec((1i64..800, -500f64..500.0), 1..60)
        ) {
            let mut t = 0;
            let mut x = 0.0;
            let mut pts = vec![mk(0, 0.0)];
            for (dt, dx) in steps {
                t += dt;
                x += dx;
                pts.push(mk(t, x));
            }
            let (segs, _) = segment_session(&pts, &SegmentationConfig::default());
            let mut prev_end = 0;
            for s in &segs {
                prop_assert!(s.start >= prev_end);
                prop_assert!(s.end <= pts.len());
                prop_assert!(s.end - s.start >= 2);
                prev_end = s.end;
            }
        }

        /// The columnar implementation is exactly the reference: same
        /// segment ranges, same per-rule fire counts, on arbitrary streams
        /// (including out-of-order timestamps and frozen runs).
        #[test]
        fn columns_match_reference(
            steps in proptest::collection::vec((-60i64..800, -80f64..80.0), 1..80)
        ) {
            let mut t = 0;
            let mut x = 0.0;
            let mut pts = vec![mk(0, 0.0)];
            for (dt, dx) in steps {
                t += dt;
                x += dx;
                pts.push(mk(t, x));
            }
            let cfg = SegmentationConfig::default();
            let reference = segment_session_reference(&pts, &cfg);
            let columnar = segment_session(&pts, &cfg);
            prop_assert_eq!(reference, columnar);
        }
    }
}
