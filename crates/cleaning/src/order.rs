use taxitrace_timebase::Timestamp;
use taxitrace_traces::RoutePoint;

/// Which candidate ordering the §IV-B repair selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenOrder {
    /// Server arrival ids were the true order (timestamps had glitched).
    ById,
    /// Device timestamps were the true order (packets arrived late).
    ByTimestamp,
}

/// Diagnostics of one order repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderRepairReport {
    pub chosen: ChosenOrder,
    /// Total trip distance when points are id-ordered, metres.
    pub id_order_length_m: f64,
    /// Total trip distance when points are timestamp-ordered, metres.
    pub ts_order_length_m: f64,
    /// Whether the two orders disagreed at all.
    pub orders_differed: bool,
}

/// §IV-B order repair.
///
/// "We sort the route points into two sequences: by their id and by their
/// timestamp. Then, the overall distance of the trip is calculated for both
/// sequences. The one with the smaller length is judged as the right
/// sequence. Finally, all the corresponding properties are aligned with
/// respect to the correct sequence to guarantee monotonic increase."
///
/// The returned points are in the chosen order with timestamps clamped to
/// be non-decreasing (the "monotonic increase" alignment: a glitched clock
/// reading is pulled up to its predecessor).
pub fn repair_order(points: &[RoutePoint]) -> (Vec<RoutePoint>, OrderRepairReport) {
    let mut by_id: Vec<RoutePoint> = points.to_vec();
    by_id.sort_by_key(|p| p.point_id);
    let mut by_ts: Vec<RoutePoint> = points.to_vec();
    // Stable sort; ties broken by id to stay deterministic.
    by_ts.sort_by_key(|p| (p.timestamp, p.point_id));

    let id_len = path_length(&by_id);
    let ts_len = path_length(&by_ts);
    let orders_differed = by_id
        .iter()
        .zip(by_ts.iter())
        .any(|(a, b)| a.point_id != b.point_id);

    // Smaller total distance wins; ties favour the timestamp order (the
    // common no-error case where both agree).
    let (mut chosen_points, chosen) = if id_len < ts_len {
        (by_id, ChosenOrder::ById)
    } else {
        (by_ts, ChosenOrder::ByTimestamp)
    };

    // Align properties: enforce monotonic timestamps.
    let mut last = Timestamp::from_secs(i64::MIN);
    for p in &mut chosen_points {
        if p.timestamp < last {
            p.timestamp = last;
        }
        last = p.timestamp;
    }

    (
        chosen_points,
        OrderRepairReport {
            chosen,
            id_order_length_m: id_len,
            ts_order_length_m: ts_len,
            orders_differed,
        },
    )
}

/// Total polyline length of a point sequence, metres (planar frame).
fn path_length(points: &[RoutePoint]) -> f64 {
    points
        .windows(2)
        .map(|w| w[0].pos.distance(w[1].pos))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pt(id: u64, t: i64, x: f64) -> RoutePoint {
        RoutePoint {
            point_id: id,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, 0.0),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: 30.0,
            heading_deg: 90.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: id as u32, element: None },
        }
    }

    #[test]
    fn agreeing_orders_pass_through() {
        let pts = vec![pt(0, 0, 0.0), pt(1, 10, 100.0), pt(2, 20, 200.0)];
        let (out, report) = repair_order(&pts);
        assert!(!report.orders_differed);
        assert_eq!(report.chosen, ChosenOrder::ByTimestamp);
        assert_eq!(out.iter().map(|p| p.point_id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn latency_reorder_fixed_by_timestamp_order() {
        // True movement 0 → 100 → 200 → 300; the middle two arrived swapped,
        // so ids are 0,1,2,3 but positions zig-zag in id order.
        let pts = vec![
            pt(0, 0, 0.0),
            pt(1, 20, 200.0), // arrived early (late point)
            pt(2, 10, 100.0),
            pt(3, 30, 300.0),
        ];
        let (out, report) = repair_order(&pts);
        assert!(report.orders_differed);
        assert_eq!(report.chosen, ChosenOrder::ByTimestamp);
        assert!(report.ts_order_length_m < report.id_order_length_m);
        let xs: Vec<f64> = out.iter().map(|p| p.pos.x).collect();
        assert_eq!(xs, vec![0.0, 100.0, 200.0, 300.0]);
    }

    #[test]
    fn clock_glitch_fixed_by_id_order() {
        // Ids are the true order; one timestamp glitched backwards.
        let pts = vec![
            pt(0, 0, 0.0),
            pt(1, 10, 100.0),
            pt(2, 3, 200.0), // clock glitch: should be ~20
            pt(3, 30, 300.0),
        ];
        let (out, report) = repair_order(&pts);
        assert!(report.orders_differed);
        assert_eq!(report.chosen, ChosenOrder::ById);
        // Timestamps monotonic after alignment.
        for w in out.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        let xs: Vec<f64> = out.iter().map(|p| p.pos.x).collect();
        assert_eq!(xs, vec![0.0, 100.0, 200.0, 300.0]);
    }

    #[test]
    fn empty_and_single_point() {
        let (out, r) = repair_order(&[]);
        assert!(out.is_empty());
        assert_eq!(r.id_order_length_m, 0.0);
        let one = vec![pt(0, 5, 1.0)];
        let (out, _) = repair_order(&one);
        assert_eq!(out.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn mk(id: u64, t: i64, x: f64, y: f64) -> RoutePoint {
        RoutePoint {
            point_id: id,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, y),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: 0.0,
            heading_deg: 0.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: id as u32, element: None },
        }
    }

    proptest! {
        /// Repair is idempotent: repairing repaired output changes nothing.
        #[test]
        fn idempotent(
            coords in proptest::collection::vec((0i64..10_000, -1e3f64..1e3, -1e3f64..1e3), 2..30)
        ) {
            let pts: Vec<RoutePoint> = coords
                .iter()
                .enumerate()
                .map(|(i, &(t, x, y))| mk(i as u64, t, x, y))
                .collect();
            let (once, _) = repair_order(&pts);
            let (twice, _) = repair_order(&once);
            let a: Vec<u64> = once.iter().map(|p| p.point_id).collect();
            let b: Vec<u64> = twice.iter().map(|p| p.point_id).collect();
            prop_assert_eq!(a, b);
        }

        /// Output timestamps are always monotonic and no point is lost.
        #[test]
        fn monotone_and_lossless(
            coords in proptest::collection::vec((0i64..10_000, -1e3f64..1e3), 0..30)
        ) {
            let pts: Vec<RoutePoint> = coords
                .iter()
                .enumerate()
                .map(|(i, &(t, x))| mk(i as u64, t, x, 0.0))
                .collect();
            let (out, _) = repair_order(&pts);
            prop_assert_eq!(out.len(), pts.len());
            for w in out.windows(2) {
                prop_assert!(w[0].timestamp <= w[1].timestamp);
            }
            let mut ids: Vec<u64> = out.iter().map(|p| p.point_id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..pts.len() as u64).collect::<Vec<_>>());
        }

        /// The chosen order never has a longer path than the rejected one.
        #[test]
        fn chooses_shorter(
            coords in proptest::collection::vec((0i64..10_000, -1e3f64..1e3), 2..30)
        ) {
            let pts: Vec<RoutePoint> = coords
                .iter()
                .enumerate()
                .map(|(i, &(t, x))| mk(i as u64, t, x, 0.0))
                .collect();
            let (_, r) = repair_order(&pts);
            match r.chosen {
                ChosenOrder::ById => prop_assert!(r.id_order_length_m <= r.ts_order_length_m),
                ChosenOrder::ByTimestamp => {
                    prop_assert!(r.ts_order_length_m <= r.id_order_length_m)
                }
            }
        }
    }
}
