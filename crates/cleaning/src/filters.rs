use std::ops::Range;

use serde::{Deserialize, Serialize};
use taxitrace_traces::{RoutePoint, TraceColumns};

/// §IV-C post filters: "all trip segments containing less than five route
/// points and longer than 30 km are removed from further analysis."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Minimum route points per segment (paper: 5).
    pub min_points: usize,
    /// Maximum segment length, metres (paper: 30 km).
    pub max_length_m: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self { min_points: 5, max_length_m: 30_000.0 }
    }
}

/// Counts of segments removed per reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FilterStats {
    pub kept: usize,
    pub too_few_points: usize,
    pub too_long: usize,
}

impl FilterConfig {
    /// Whether a segment survives the filters; updates `stats`.
    pub fn admit(&self, points: &[RoutePoint], stats: &mut FilterStats) -> bool {
        if points.len() < self.min_points {
            stats.too_few_points += 1;
            return false;
        }
        if segment_length_m(points) > self.max_length_m {
            stats.too_long += 1;
            return false;
        }
        stats.kept += 1;
        true
    }

    /// Columns-based variant of [`admit`](Self::admit): the same decision
    /// for the sub-range `range` of a session buffer, measuring length over
    /// the contiguous coordinate columns instead of a point slice.
    pub fn admit_range(
        &self,
        cols: &TraceColumns,
        range: Range<usize>,
        stats: &mut FilterStats,
    ) -> bool {
        if range.len() < self.min_points {
            stats.too_few_points += 1;
            return false;
        }
        if cols.length_m(range) > self.max_length_m {
            stats.too_long += 1;
            return false;
        }
        stats.kept += 1;
        true
    }
}

/// Path length of a segment's point sequence, metres.
pub fn segment_length_m(points: &[RoutePoint]) -> f64 {
    points.windows(2).map(|w| w[0].pos.distance(w[1].pos)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pts(n: usize, step_m: f64) -> Vec<RoutePoint> {
        (0..n)
            .map(|i| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(1),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(i as f64 * step_m, 0.0),
                timestamp: Timestamp::from_secs(i as i64 * 10),
                speed_kmh: 30.0,
                heading_deg: 90.0,
                fuel_ml: 0.0,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect()
    }

    #[test]
    fn admits_normal_segment() {
        let mut stats = FilterStats::default();
        assert!(FilterConfig::default().admit(&pts(20, 100.0), &mut stats));
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn rejects_too_few_points() {
        let mut stats = FilterStats::default();
        assert!(!FilterConfig::default().admit(&pts(4, 100.0), &mut stats));
        assert_eq!(stats.too_few_points, 1);
        // Exactly 5 points passes.
        assert!(FilterConfig::default().admit(&pts(5, 100.0), &mut stats));
    }

    #[test]
    fn rejects_over_30km() {
        let mut stats = FilterStats::default();
        // 100 points × 400 m = 39.6 km.
        assert!(!FilterConfig::default().admit(&pts(100, 400.0), &mut stats));
        assert_eq!(stats.too_long, 1);
    }

    #[test]
    fn admit_range_matches_slice_admit() {
        let points = pts(120, 300.0);
        let cols = TraceColumns::from_points(&points);
        let cfg = FilterConfig::default();
        for range in [0..120, 0..4, 10..15, 0..110, 40..40] {
            let mut a = FilterStats::default();
            let mut b = FilterStats::default();
            assert_eq!(
                cfg.admit(&points[range.clone()], &mut a),
                cfg.admit_range(&cols, range.clone(), &mut b),
                "{range:?}"
            );
            assert_eq!(a, b, "{range:?}");
        }
    }

    #[test]
    fn length_computation() {
        assert_eq!(segment_length_m(&pts(11, 50.0)), 500.0);
        assert_eq!(segment_length_m(&pts(1, 50.0)), 0.0);
        assert_eq!(segment_length_m(&[]), 0.0);
    }
}
