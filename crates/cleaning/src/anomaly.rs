//! Post-cleaning invariant checks backing the pipeline's record-level
//! quarantine (the paper's §IV-B raw-data error classes).
//!
//! Cleaning repairs what it can: order repair undoes transmission
//! reordering and clamps glitched clocks, segmentation cuts out stops and
//! silent gaps, filters drop degenerate segments. What remains *should*
//! be physically plausible driving. These detectors check exactly that on
//! the cleaned output, with thresholds chosen so far beyond anything the
//! repaired simulator output produces that a firing detector means the
//! session carries damage cleaning cannot explain — the record belongs in
//! quarantine, not in the study.
//!
//! The taxonomy mirrors the raw-data error classes the paper's cleaning
//! stage is built around:
//!
//! * **position jump** — a consecutive pair teleports: large displacement
//!   at an impossible implied speed;
//! * **clock skew** — a long run of points sharing one timestamp while
//!   the vehicle covers real distance (the clamp signature the §IV-B
//!   monotonic-increase alignment leaves behind a large backwards jump);
//! * **dropout** — a long silent gap *inside* a segment with substantial
//!   movement (Table 2 rules 2/4 split silent gaps with little movement;
//!   a far-moving silence survives them and is unaccounted driving);
//! * **stuck sensor** — a long run frozen at one position while the unit
//!   keeps reporting driving speeds.

use serde::{Deserialize, Serialize};
use taxitrace_traces::RoutePoint;

use crate::pipeline::CleanedSession;

/// The §IV-B error class a cleaned session was quarantined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Teleporting displacement at an impossible implied speed.
    PositionJump,
    /// Flattened clock: many points on one timestamp while moving.
    ClockSkew,
    /// Long in-segment silence with substantial movement.
    Dropout,
    /// Frozen position with driving-range reported speeds.
    StuckSensor,
}

impl AnomalyKind {
    /// Stable lowercase label (used in metrics names and ledgers).
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::PositionJump => "position_jump",
            AnomalyKind::ClockSkew => "clock_skew",
            AnomalyKind::Dropout => "dropout",
            AnomalyKind::StuckSensor => "stuck_sensor",
        }
    }
}

/// Detection thresholds.
///
/// Every default is physically extreme on purpose: repaired simulator
/// output (including the default corruption model's reorders, clock
/// glitches and duplicates) stays far below all of them, so with no chaos
/// plan the detectors are inert and the pipeline's output is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Position jump: implied speed above this (km/h)…
    pub max_implied_speed_kmh: f64,
    /// …combined with a displacement above this (metres).
    pub min_jump_m: f64,
    /// Clock skew: at least this many consecutive points on one timestamp…
    pub skew_run: usize,
    /// …while covering at least this much path (metres).
    pub skew_min_travel_m: f64,
    /// Dropout: an in-segment gap longer than this (seconds)…
    pub max_gap_s: i64,
    /// …across which the vehicle moved at least this far (metres).
    pub dropout_min_travel_m: f64,
    /// Stuck sensor: at least this many consecutive points…
    pub stuck_run: usize,
    /// …within this radius of the run start (metres)…
    pub stuck_radius_m: f64,
    /// …with mean reported speed above this (km/h).
    pub stuck_min_speed_kmh: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            max_implied_speed_kmh: 400.0,
            min_jump_m: 2_500.0,
            skew_run: 64,
            skew_min_travel_m: 4_000.0,
            max_gap_s: 900,
            dropout_min_travel_m: 3_000.0,
            stuck_run: 10,
            stuck_radius_m: 0.5,
            stuck_min_speed_kmh: 5.0,
        }
    }
}

/// Scans a cleaned session's kept segments for the first invariant
/// violation, in deterministic order (segments in order; within a
/// segment, pair checks before run checks). Returns the error class and a
/// human-readable detail, or `None` for a plausible session.
pub fn session_anomaly(
    session: &CleanedSession,
    config: &AnomalyConfig,
) -> Option<(AnomalyKind, String)> {
    for (i, segment) in session.segments.iter().enumerate() {
        if let Some(found) = segment_anomaly(&segment.points, config) {
            let (kind, detail) = found;
            return Some((kind, format!("segment {i}: {detail}")));
        }
    }
    None
}

/// [`session_anomaly`] on one segment's point sequence.
pub fn segment_anomaly(
    points: &[RoutePoint],
    config: &AnomalyConfig,
) -> Option<(AnomalyKind, String)> {
    for w in points.windows(2) {
        let dist_m = w[0].pos.distance(w[1].pos);
        let dt_s = (w[1].timestamp - w[0].timestamp).secs();
        if dist_m >= config.min_jump_m {
            // dt == 0 after clamping means infinite implied speed.
            let implied_kmh =
                if dt_s <= 0 { f64::INFINITY } else { dist_m / dt_s as f64 * 3.6 };
            if implied_kmh > config.max_implied_speed_kmh {
                return Some((
                    AnomalyKind::PositionJump,
                    format!("{dist_m:.0} m in {dt_s} s (implied {implied_kmh:.0} km/h)"),
                ));
            }
        }
        if dt_s > config.max_gap_s && dist_m >= config.dropout_min_travel_m {
            return Some((
                AnomalyKind::Dropout,
                format!("{dt_s} s silent while moving {dist_m:.0} m"),
            ));
        }
    }

    // Run scans: maximal runs of equal timestamps / frozen positions.
    let mut start = 0;
    while start < points.len() {
        let mut end = start + 1;
        while end < points.len() && points[end].timestamp == points[start].timestamp {
            end += 1;
        }
        let run = &points[start..end];
        if run.len() >= config.skew_run {
            let travel: f64 = run.windows(2).map(|w| w[0].pos.distance(w[1].pos)).sum();
            if travel >= config.skew_min_travel_m {
                return Some((
                    AnomalyKind::ClockSkew,
                    format!(
                        "{} points share one timestamp across {travel:.0} m",
                        run.len()
                    ),
                ));
            }
        }
        start = end;
    }

    let mut start = 0;
    while start < points.len() {
        let anchor = points[start].pos;
        let mut end = start + 1;
        while end < points.len() && points[end].pos.distance(anchor) <= config.stuck_radius_m
        {
            end += 1;
        }
        let run = &points[start..end];
        if run.len() >= config.stuck_run {
            let mean_speed =
                run.iter().map(|p| p.speed_kmh).sum::<f64>() / run.len() as f64;
            if mean_speed > config.stuck_min_speed_kmh {
                return Some((
                    AnomalyKind::StuckSensor,
                    format!(
                        "{} points frozen in place at mean {mean_speed:.0} km/h",
                        run.len()
                    ),
                ));
            }
        }
        start = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pt(i: usize, x: f64, t: i64, speed: f64) -> RoutePoint {
        RoutePoint {
            point_id: i as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, 0.0),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: speed,
            heading_deg: 90.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: i as u32, element: None },
        }
    }

    fn cfg() -> AnomalyConfig {
        AnomalyConfig::default()
    }

    #[test]
    fn plausible_driving_is_clean() {
        // 40 points, 100 m / 10 s apart: 36 km/h.
        let points: Vec<_> =
            (0..40).map(|i| pt(i, i as f64 * 100.0, i as i64 * 10, 36.0)).collect();
        assert_eq!(segment_anomaly(&points, &cfg()), None);
    }

    #[test]
    fn teleport_is_a_position_jump() {
        let mut points: Vec<_> =
            (0..10).map(|i| pt(i, i as f64 * 100.0, i as i64 * 10, 36.0)).collect();
        for p in &mut points[5..] {
            p.pos = Point::new(p.pos.x + 5_000.0, 0.0);
        }
        let (kind, _) = segment_anomaly(&points, &cfg()).unwrap();
        assert_eq!(kind, AnomalyKind::PositionJump);
    }

    #[test]
    fn flattened_clock_is_skew() {
        // 80 points frozen on one timestamp while covering 7.9 km.
        let points: Vec<_> = (0..80).map(|i| pt(i, i as f64 * 100.0, 50, 36.0)).collect();
        let (kind, _) = segment_anomaly(&points, &cfg()).unwrap();
        assert_eq!(kind, AnomalyKind::ClockSkew);
    }

    #[test]
    fn long_moving_silence_is_dropout() {
        let mut points: Vec<_> =
            (0..10).map(|i| pt(i, i as f64 * 100.0, i as i64 * 10, 36.0)).collect();
        // 1200 s silent gap across 4 km between points 4 and 5.
        for (j, p) in points.iter_mut().enumerate().skip(5) {
            p.timestamp = Timestamp::from_secs(40 + 1_210 + (j as i64 - 5) * 10);
            p.pos = Point::new(4_400.0 + (j as f64 - 5.0) * 100.0, 0.0);
        }
        let (kind, _) = segment_anomaly(&points, &cfg()).unwrap();
        assert_eq!(kind, AnomalyKind::Dropout);
    }

    #[test]
    fn frozen_position_at_speed_is_stuck_sensor() {
        let points: Vec<_> = (0..10).map(|i| pt(i, 500.0, i as i64 * 10, 45.0)).collect();
        let (kind, _) = segment_anomaly(&points, &cfg()).unwrap();
        assert_eq!(kind, AnomalyKind::StuckSensor);
    }

    #[test]
    fn frozen_position_at_rest_is_fine() {
        // A parked car sending heartbeats is not a sensor fault.
        let points: Vec<_> = (0..10).map(|i| pt(i, 500.0, i as i64 * 10, 0.0)).collect();
        assert_eq!(segment_anomaly(&points, &cfg()), None);
    }
}
