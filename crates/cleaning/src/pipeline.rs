use serde::{Deserialize, Serialize};
use taxitrace_traces::{RawTrip, RoutePoint, TaxiId, TraceColumns, TripId};
use taxitrace_timebase::Timestamp;

use crate::filters::{segment_length_m, FilterConfig, FilterStats};
use crate::order::{repair_order, OrderRepairReport};
use crate::segmentation::{
    resplit_columns, segment_columns, SegmentationConfig, SegmentationReport,
};

/// Full cleaning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CleaningConfig {
    pub segmentation: SegmentationConfig,
    pub filters: FilterConfig,
}

/// One cleaned, driveable trip segment.
///
/// A segment is identified by its parent session and the start time of its
/// first point — matching the paper's §IV-F "trip identifier (trip id)
/// together with the start time of the trip as a unique identifier".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripSegment {
    pub trip_id: TripId,
    pub taxi: TaxiId,
    pub start_time: Timestamp,
    pub points: Vec<RoutePoint>,
}

impl TripSegment {
    /// Path length, metres.
    pub fn length_m(&self) -> f64 {
        segment_length_m(&self.points)
    }

    /// Wall-clock duration of the segment.
    pub fn duration(&self) -> taxitrace_timebase::Duration {
        // lint:allow(panic-free-library): segment constructor keeps >= 2 points
        let last = self.points.last().expect("segments are non-empty");
        last.timestamp - self.points[0].timestamp
    }

    /// Fuel consumed over the segment, ml (difference of the session's
    /// cumulative meter).
    pub fn fuel_ml(&self) -> f64 {
        // lint:allow(panic-free-library): segment constructor keeps >= 2 points
        let last = self.points.last().expect("segments are non-empty");
        (last.fuel_ml - self.points[0].fuel_ml).max(0.0)
    }
}

/// Per-session cleaning statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CleaningStats {
    pub raw_points: usize,
    /// Whether order repair had to change the order.
    pub order_repaired: bool,
    /// Exact duplicate uploads removed before segmentation.
    pub duplicates_removed: usize,
    pub segmentation: SegmentationReport,
    pub filters: FilterStats,
}

/// A cleaned session: segments plus audit trail.
#[derive(Debug, Clone)]
pub struct CleanedSession {
    pub trip_id: TripId,
    pub taxi: TaxiId,
    pub segments: Vec<TripSegment>,
    pub stats: CleaningStats,
    pub order_report: OrderRepairReport,
}

/// Runs the full §IV-B/C cleaning pipeline on one raw session:
/// order repair → Table 2 segmentation → rule 5 re-split → filters.
pub fn clean_session(session: &RawTrip, config: &CleaningConfig) -> CleanedSession {
    let (mut ordered, order_report) = repair_order(&session.points);
    let duplicates_removed = dedup_points(&mut ordered);
    // One struct-of-arrays gather per session; segmentation, rule 5 and the
    // filters all stream over these columns instead of the point structs.
    let cols = TraceColumns::from_points(&ordered);
    let (mut ranges, mut seg_report) = segment_columns(&cols, &config.segmentation);

    // Rule 5: "If after the first round, there are still trips longer than
    // 40 km, we try to split these with the rule 1, having 1.5 minutes'
    // interval."
    let mut resplit: Vec<std::ops::Range<usize>> = Vec::with_capacity(ranges.len());
    for r in ranges.drain(..) {
        if cols.length_m(r.clone()) > config.segmentation.rule5_trigger_m {
            resplit.extend(resplit_columns(&cols, r, &config.segmentation, &mut seg_report));
        } else {
            resplit.push(r);
        }
    }

    let mut filter_stats = FilterStats::default();
    let mut segments = Vec::with_capacity(resplit.len());
    for r in resplit {
        if config.filters.admit_range(&cols, r.clone(), &mut filter_stats) {
            let pts = &ordered[r];
            segments.push(TripSegment {
                trip_id: session.id,
                taxi: session.taxi,
                start_time: pts[0].timestamp,
                points: pts.to_vec(),
            });
        }
    }

    CleanedSession {
        trip_id: session.id,
        taxi: session.taxi,
        segments,
        stats: CleaningStats {
            raw_points: session.points.len(),
            order_repaired: order_report.orders_differed,
            duplicates_removed,
            segmentation: seg_report,
            filters: filter_stats,
        },
        order_report,
    }
}

/// Removes exact duplicate uploads: consecutive points with identical
/// timestamp and position (the device re-sent a measurement). Returns the
/// number removed. Part of "filtering the most obvious errors from the
/// data set".
fn dedup_points(points: &mut Vec<taxitrace_traces::RoutePoint>) -> usize {
    let before = points.len();
    points.dedup_by(|b, a| {
        b.timestamp == a.timestamp && b.pos.distance(a.pos) < 1e-9 && b.speed_kmh == a.speed_kmh
    });
    before - points.len()
}

/// Ground-truth validation of recovered segments against the simulator's
/// customer-trip boundaries.
///
/// A truth leg counts as *recovered* when some segment covers ≥ `coverage`
/// of the leg's sequence range **and** the leg makes up at least half of
/// that segment — the second condition stops an under-segmented
/// whole-session blob from counting as a recovery of every leg inside it.
/// Precision counts segments that recover some leg under the same rule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegmentValidation {
    pub truth_legs: usize,
    pub recovered_legs: usize,
    pub segments: usize,
    pub matched_segments: usize,
}

impl SegmentValidation {
    /// Fraction of true legs recovered by some segment.
    pub fn recall(&self) -> f64 {
        if self.truth_legs == 0 {
            return 1.0;
        }
        self.recovered_legs as f64 / self.truth_legs as f64
    }

    /// Fraction of produced segments that correspond to a true leg.
    pub fn precision(&self) -> f64 {
        if self.segments == 0 {
            return 1.0;
        }
        self.matched_segments as f64 / self.segments as f64
    }
}

/// Compares cleaned segments to the session's ground truth.
pub fn validate_segments(
    session: &RawTrip,
    cleaned: &CleanedSession,
    coverage: f64,
) -> SegmentValidation {
    let mut v = SegmentValidation {
        truth_legs: session.truth_trips.len(),
        segments: cleaned.segments.len(),
        ..Default::default()
    };
    let seg_ranges: Vec<(u32, u32)> = cleaned
        .segments
        .iter()
        .map(|s| {
            let mut lo = u32::MAX;
            let mut hi = 0;
            for p in &s.points {
                lo = lo.min(p.truth.seq);
                hi = hi.max(p.truth.seq);
            }
            (lo, hi)
        })
        .collect();
    let mut seg_matched = vec![false; seg_ranges.len()];
    for leg in &session.truth_trips {
        let leg_len = (leg.end_seq - leg.start_seq + 1) as f64;
        let mut recovered = false;
        for (si, &(lo, hi)) in seg_ranges.iter().enumerate() {
            let overlap_lo = lo.max(leg.start_seq);
            let overlap_hi = hi.min(leg.end_seq);
            if overlap_hi < overlap_lo {
                continue;
            }
            let overlap = (overlap_hi - overlap_lo + 1) as f64;
            let seg_len = (hi - lo + 1) as f64;
            if overlap / leg_len >= coverage && overlap / seg_len >= 0.5 {
                recovered = true;
                seg_matched[si] = true;
            }
        }
        if recovered {
            v.recovered_legs += 1;
        }
    }
    v.matched_segments = seg_matched.iter().filter(|&&m| m).count();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_roadnet::synth::{generate, OuluConfig};
    use taxitrace_traces::{simulate_fleet, FleetConfig};
    use taxitrace_weather::WeatherModel;

    fn simulated() -> Vec<RawTrip> {
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        simulate_fleet(&city, &weather, &FleetConfig::tiny(21)).sessions
    }

    #[test]
    fn pipeline_recovers_simulated_legs() {
        let sessions = simulated();
        assert!(!sessions.is_empty());
        let config = CleaningConfig::default();
        let mut total = SegmentValidation::default();
        for s in &sessions {
            let cleaned = clean_session(s, &config);
            let v = validate_segments(s, &cleaned, 0.7);
            total.truth_legs += v.truth_legs;
            total.recovered_legs += v.recovered_legs;
            total.segments += v.segments;
            total.matched_segments += v.matched_segments;
        }
        assert!(total.truth_legs > 20, "enough legs simulated: {}", total.truth_legs);
        assert!(
            total.recall() > 0.8,
            "segmentation recall {:.2} (recovered {}/{})",
            total.recall(),
            total.recovered_legs,
            total.truth_legs
        );
        assert!(
            total.precision() > 0.6,
            "segmentation precision {:.2} ({} matched / {} segments)",
            total.precision(),
            total.matched_segments,
            total.segments
        );
    }

    #[test]
    fn order_repair_recovers_true_sequence_on_simulated_data() {
        let sessions = simulated();
        let mut repaired_sessions = 0;
        let mut correct = 0;
        let mut total = 0;
        for s in &sessions {
            let (ordered, report) = repair_order(&s.points);
            if report.orders_differed {
                repaired_sessions += 1;
            }
            total += 1;
            let seqs: Vec<u32> = ordered.iter().map(|p| p.truth.seq).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            if seqs == sorted {
                correct += 1;
            }
        }
        assert!(repaired_sessions > 0, "corruption actually occurred");
        let rate = correct as f64 / total as f64;
        assert!(rate > 0.9, "order recovery rate {rate:.2}");
    }

    #[test]
    fn segments_respect_filters() {
        let sessions = simulated();
        let config = CleaningConfig::default();
        for s in &sessions {
            let cleaned = clean_session(s, &config);
            for seg in &cleaned.segments {
                assert!(seg.points.len() >= config.filters.min_points);
                assert!(seg.length_m() <= config.filters.max_length_m);
                assert!(seg.fuel_ml() >= 0.0);
                assert!(seg.duration().secs() >= 0);
                // Points in time order.
                for w in seg.points.windows(2) {
                    assert!(w[0].timestamp <= w[1].timestamp);
                }
            }
        }
    }

    #[test]
    fn duplicate_uploads_are_removed() {
        let sessions = simulated();
        let config = CleaningConfig::default();
        let total_dups: usize = sessions
            .iter()
            .map(|s| clean_session(s, &config).stats.duplicates_removed)
            .sum();
        // The default corruption config injects ~0.4% duplicates.
        assert!(total_dups > 0, "duplicates occurred and were removed");
        // After cleaning, no segment contains an exact duplicate pair.
        for s in &sessions {
            for seg in clean_session(s, &config).segments {
                for w in seg.points.windows(2) {
                    assert!(
                        !(w[0].timestamp == w[1].timestamp
                            && w[0].pos.distance(w[1].pos) < 1e-9
                            && w[0].speed_kmh == w[1].speed_kmh),
                        "duplicate survived cleaning"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let sessions = simulated();
        let config = CleaningConfig::default();
        let cleaned = clean_session(&sessions[0], &config);
        assert_eq!(cleaned.stats.raw_points, sessions[0].points.len());
        let fires: usize = cleaned.stats.segmentation.rule_fires.iter().sum();
        // At least one rule fired on a multi-leg session.
        if sessions[0].truth_trips.len() > 1 {
            assert!(fires > 0);
        }
    }
}
