//! Linear interpolation of lost route points.
//!
//! The paper's related work (Jiang et al., "Error processing on the
//! real-time traffic data") restores lost sensor data by linear
//! interpolation; the Driveco stream exhibits the same loss mode (device
//! sleep, dropped uploads). This module restores points on long *moving*
//! gaps so that downstream per-point analyses see a more uniform sampling
//! density. Interpolation is applied after segmentation (a silent gap that
//! is a stop must split the trip, not be painted over).

use serde::{Deserialize, Serialize};
use taxitrace_timebase::Duration;
use taxitrace_traces::{PointTruth, RoutePoint};

/// Interpolation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterpolateConfig {
    /// Gaps longer than this get interpolated points, seconds.
    pub max_gap_s: i64,
    /// Target spacing of restored points, seconds.
    pub step_s: i64,
    /// Only moving gaps are restored: pairwise speed must exceed this
    /// (m/s) — stationary gaps are stops, not data loss.
    pub min_speed_ms: f64,
}

impl Default for InterpolateConfig {
    fn default() -> Self {
        Self { max_gap_s: 90, step_s: 30, min_speed_ms: 1.5 }
    }
}

/// Statistics of one interpolation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InterpolateStats {
    pub gaps_restored: usize,
    pub points_inserted: usize,
}

/// Restores points on long moving gaps by linear interpolation of
/// position, speed, heading and cumulative fuel. Inserted points carry
/// `truth.element = None` and reuse the predecessor's sequence number + a
/// synthetic flag via `point_id = u64::MAX` (they never existed on the
/// device).
pub fn interpolate_gaps(
    points: &[RoutePoint],
    config: &InterpolateConfig,
) -> (Vec<RoutePoint>, InterpolateStats) {
    let mut stats = InterpolateStats::default();
    if points.len() < 2 {
        return (points.to_vec(), stats);
    }
    let mut out: Vec<RoutePoint> = Vec::with_capacity(points.len());
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        out.push(*a);
        let dt = (b.timestamp - a.timestamp).secs();
        if dt <= config.max_gap_s {
            continue;
        }
        let dist = a.pos.distance(b.pos);
        if dist / dt as f64 <= config.min_speed_ms {
            continue; // a stop, not a loss
        }
        stats.gaps_restored += 1;
        let n = (dt / config.step_s).max(1) as usize;
        for k in 1..n {
            let t = k as f64 / n as f64;
            let pos = a.pos.lerp(b.pos, t);
            out.push(RoutePoint {
                point_id: u64::MAX, // synthetic marker
                trip_id: a.trip_id,
                taxi: a.taxi,
                geo: taxitrace_geo::GeoPoint::new(
                    a.geo.lon + (b.geo.lon - a.geo.lon) * t,
                    a.geo.lat + (b.geo.lat - a.geo.lat) * t,
                ),
                pos,
                timestamp: a.timestamp + Duration::from_secs((dt as f64 * t) as i64),
                speed_kmh: a.speed_kmh + (b.speed_kmh - a.speed_kmh) * t,
                heading_deg: a.pos.heading_to(b.pos),
                fuel_ml: a.fuel_ml + (b.fuel_ml - a.fuel_ml) * t,
                truth: PointTruth { seq: a.truth.seq, element: None },
            });
            stats.points_inserted += 1;
        }
    }
    // lint:allow(panic-free-library): caller guarantees len >= 2
    out.push(*points.last().expect("len >= 2"));
    (out, stats)
}

/// Whether a point was inserted by [`interpolate_gaps`].
pub fn is_synthetic(p: &RoutePoint) -> bool {
    p.point_id == u64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{TaxiId, TripId};

    fn pt(t: i64, x: f64, speed: f64) -> RoutePoint {
        RoutePoint {
            point_id: t as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0 + x / 100_000.0, 65.0),
            pos: Point::new(x, 0.0),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: speed,
            heading_deg: 90.0,
            fuel_ml: t as f64 * 0.5,
            truth: PointTruth { seq: t as u32, element: None },
        }
    }

    #[test]
    fn moving_gap_restored() {
        // 300 s silent gap while moving 3 km.
        let pts = vec![pt(0, 0.0, 36.0), pt(300, 3000.0, 36.0)];
        let (out, stats) = interpolate_gaps(&pts, &InterpolateConfig::default());
        assert_eq!(stats.gaps_restored, 1);
        assert_eq!(stats.points_inserted, 9); // 300/30 - 1
        assert_eq!(out.len(), 11);
        // Positions march linearly, timestamps monotonically.
        for w in out.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp);
            assert!(w[0].pos.x < w[1].pos.x);
        }
        // Synthetic points are flagged.
        assert!(is_synthetic(&out[5]));
        assert!(!is_synthetic(&out[0]));
        assert!(!is_synthetic(&out[10]));
        // Fuel interpolates monotonically.
        assert!(out[5].fuel_ml > out[0].fuel_ml && out[5].fuel_ml < out[10].fuel_ml);
    }

    #[test]
    fn stationary_gap_left_alone() {
        // Same gap but no movement: a stop, not data loss.
        let pts = vec![pt(0, 0.0, 0.0), pt(300, 10.0, 0.0)];
        let (out, stats) = interpolate_gaps(&pts, &InterpolateConfig::default());
        assert_eq!(stats.gaps_restored, 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn short_gaps_untouched() {
        let pts = vec![pt(0, 0.0, 36.0), pt(60, 600.0, 36.0), pt(120, 1200.0, 36.0)];
        let (out, stats) = interpolate_gaps(&pts, &InterpolateConfig::default());
        assert_eq!(stats.points_inserted, 0);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = InterpolateConfig::default();
        assert!(interpolate_gaps(&[], &cfg).0.is_empty());
        let one = vec![pt(0, 0.0, 10.0)];
        assert_eq!(interpolate_gaps(&one, &cfg).0.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{TaxiId, TripId};

    fn mk(t: i64, x: f64) -> RoutePoint {
        RoutePoint {
            point_id: t as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, 0.0),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: 30.0,
            heading_deg: 90.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: t as u32, element: None },
        }
    }

    proptest! {
        /// Interpolation preserves all original points in order and keeps
        /// timestamps non-decreasing.
        #[test]
        fn preserves_originals(
            steps in proptest::collection::vec((1i64..600, -2e3f64..2e3), 1..25)
        ) {
            let mut t = 0;
            let mut x = 0.0;
            let mut pts = vec![mk(0, 0.0)];
            for (dt, dx) in steps {
                t += dt;
                x += dx;
                pts.push(mk(t, x));
            }
            let (out, _) = interpolate_gaps(&pts, &InterpolateConfig::default());
            // Originals appear in order.
            let originals: Vec<&RoutePoint> =
                out.iter().filter(|p| !is_synthetic(p)).collect();
            prop_assert_eq!(originals.len(), pts.len());
            for (a, b) in originals.iter().zip(&pts) {
                prop_assert_eq!(a.point_id, b.point_id);
            }
            for w in out.windows(2) {
                prop_assert!(w[0].timestamp <= w[1].timestamp);
            }
        }
    }
}
