//! Adversarial robustness properties for the cleaning pipeline: for *any*
//! corruption the transmission model can apply — including configurations
//! far nastier than the calibrated defaults — `clean_session` and
//! `validate_segments` must neither panic nor emit non-finite or
//! impossible statistics. This is the record-level half of the fault
//! model: whatever arrives, cleaning's answer is a well-formed (possibly
//! empty) set of segments, never a poisoned one.

use proptest::prelude::*;
use taxitrace_cleaning::{
    clean_session, session_anomaly, validate_segments, AnomalyConfig, CleaningConfig,
};
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_roadnet::NodeId;
use taxitrace_timebase::Timestamp;
use taxitrace_traces::corruption::corrupt_session;
use taxitrace_traces::{
    CorruptionConfig, CustomerTripTruth, PointTruth, RawTrip, Rng, TaxiId, TripId,
};

/// A synthetic drive in true measurement order: `n` points along a bent
/// path with stop-and-go speeds, sampled every `step_s` seconds.
fn base_points(n: usize, step_s: i64, speed_kmh: f64) -> Vec<taxitrace_traces::RoutePoint> {
    (0..n)
        .map(|i| {
            let along = i as f64 * speed_kmh / 3.6 * step_s as f64;
            // A bend plus a periodic full stop (speed 0 every 11th point)
            // so segmentation's stop rules have real material to cut on.
            let speed = if i % 11 == 0 { 0.0 } else { speed_kmh };
            taxitrace_traces::RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(1),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(along, (along * 0.35).sin() * 180.0),
                timestamp: Timestamp::from_secs(i as i64 * step_s),
                speed_kmh: speed,
                heading_deg: 90.0,
                fuel_ml: i as f64 * 3.0,
                truth: PointTruth { seq: i as u32, element: None },
            }
        })
        .collect()
}

fn session_from(points: Vec<taxitrace_traces::RoutePoint>, n: usize) -> RawTrip {
    let start_time = points.iter().map(|p| p.timestamp).min().unwrap();
    let end_time = points.iter().map(|p| p.timestamp).max().unwrap();
    RawTrip {
        id: TripId(1),
        taxi: TaxiId(1),
        start_time,
        end_time,
        points,
        total_time: end_time - start_time,
        total_distance_m: 1_000.0,
        total_fuel_ml: 500.0,
        truth_trips: vec![CustomerTripTruth {
            start_seq: 0,
            end_seq: (n - 1) as u32,
            origin: NodeId(0),
            destination: NodeId(0),
            elements: Vec::new(),
            od_pair: None,
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any corruption of any plausible drive cleans to finite, coherent
    /// output, and the validator's counts stay internally consistent.
    #[test]
    fn cleaning_survives_arbitrary_corruption(
        seed in 0u64..1_000,
        n in 8usize..180,
        step_s in 1i64..40,
        speed_kmh in 0.5f64..90.0,
        p_reorder in 0.0f64..1.0,
        p_ts_glitch in 0.0f64..1.0,
        burst_min in 1usize..12,
        burst_extra in 0usize..14,
        glitch_points in 1usize..10,
        glitch_max_s in 1i64..600,
        p_duplicate in 0.0f64..0.5,
    ) {
        let corruption = CorruptionConfig {
            p_reorder,
            p_ts_glitch,
            burst_min,
            burst_max: burst_min + burst_extra,
            glitch_points,
            glitch_max_s,
            p_duplicate,
        };
        let mut rng = Rng::new(seed);
        let (points, _applied) =
            corrupt_session(&corruption, &mut rng, base_points(n, step_s, speed_kmh));
        let session = session_from(points, n);

        let cleaned = clean_session(&session, &CleaningConfig::default());

        // Stats are counts of real events: bounded by the input (which may
        // exceed `n` — corruption injects duplicate uploads).
        prop_assert_eq!(cleaned.stats.raw_points, session.points.len());
        let kept: usize = cleaned.segments.iter().map(|s| s.points.len()).sum();
        prop_assert!(kept + cleaned.stats.duplicates_removed <= cleaned.stats.raw_points);

        for segment in &cleaned.segments {
            prop_assert!(!segment.points.is_empty());
            prop_assert!(segment.length_m().is_finite());
            prop_assert!(segment.length_m() >= 0.0);
            for w in segment.points.windows(2) {
                // Order repair guarantees monotone time inside a segment.
                prop_assert!(w[0].timestamp <= w[1].timestamp);
            }
            for p in &segment.points {
                prop_assert!(p.pos.x.is_finite() && p.pos.y.is_finite());
                prop_assert!(p.speed_kmh.is_finite() && p.speed_kmh >= 0.0);
            }
        }

        // The anomaly scan must always reach a verdict without panicking.
        let _ = session_anomaly(&cleaned, &AnomalyConfig::default());

        let v = validate_segments(&session, &cleaned, 0.7);
        prop_assert_eq!(v.truth_legs, 1);
        prop_assert!(v.recovered_legs <= v.truth_legs);
        prop_assert_eq!(v.segments, cleaned.segments.len());
        prop_assert!(v.matched_segments <= v.segments);
        prop_assert!(v.recall().is_finite() && (0.0..=1.0).contains(&v.recall()));
    }
}
