//! Incremental map-matching (Brakatsoulas et al., VLDB'05), as used by the
//! paper, with look-ahead and road-direction awareness.

use taxitrace_roadnet::{EdgeId, RoadGraph};
use taxitrace_traces::RoutePoint;

use crate::candidates::{CandidateIndex, ScoredCandidate};
use crate::path::{element_path_blind, element_path_budgeted};
use crate::scratch::MatchScratch;
use crate::types::{MatchConfig, MatchedPoint, MatchedTrace};

/// Connectivity score between the previously matched edge and a candidate
/// edge: same edge 1.0, edges sharing a junction 0.8, two hops 0.5,
/// otherwise 0.1 (a jump — possible, but expensive, so only a strong
/// distance/heading advantage can force it).
fn connectivity(graph: &RoadGraph, prev: Option<EdgeId>, cand: EdgeId) -> f64 {
    let Some(prev) = prev else { return 1.0 };
    if prev == cand {
        return 1.0;
    }
    let pe = graph.edge(prev);
    let ce = graph.edge(cand);
    let shares = |a: &taxitrace_roadnet::Edge, b: &taxitrace_roadnet::Edge| {
        a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to
    };
    if shares(pe, ce) {
        return 0.8;
    }
    // Two hops: some edge incident to prev's endpoints touches cand.
    for node in [pe.from, pe.to] {
        for &(_, nb) in graph.neighbors(node) {
            if nb == ce.from || nb == ce.to {
                return 0.5;
            }
        }
    }
    0.1
}

fn combined(config: &MatchConfig, sc: &ScoredCandidate, conn: f64) -> f64 {
    config.w_dist * sc.s_dist + config.w_head * sc.s_head + config.w_conn * conn
}

/// Matches a trace with the incremental algorithm.
///
/// For every point, candidates within the radius are scored on distance,
/// orientation (direction-constrained) and connectivity to the previous
/// match; with `lookahead > 0` the score adds the best achievable score of
/// the following point(s) given the candidate, which resolves junction
/// ambiguities that a greedy matcher gets wrong.
pub fn match_trace(
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    match_trace_with(&mut MatchScratch::new(), graph, index, points, config)
}

/// Pre-optimisation reference of [`match_trace`]: identical matching, but
/// gaps are filled by blind per-query Dijkstra with no memoisation — the
/// behaviour the goal-directed routing core replaced. Kept for benches.
pub fn match_trace_reference(
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    let (matched, unmatched) = match_points(graph, index, points, config);
    let elements = element_path_blind(graph, &matched, config.gap_fill);
    MatchedTrace { points: matched, elements, unmatched }
}

/// [`match_trace`] with caller-owned scratch, reused across traces.
pub fn match_trace_with(
    scratch: &mut MatchScratch,
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    let (matched, unmatched, candidates_scored) =
        match_points_counted(graph, index, points, config);
    scratch.traces += 1;
    scratch.candidates_scored += candidates_scored;
    scratch.points_matched += matched.len() as u64;
    scratch.points_unmatched += unmatched as u64;
    let elements = element_path_budgeted(
        scratch,
        graph,
        &matched,
        config.gap_fill,
        config.gap_fill_max_expansions,
    );
    MatchedTrace { points: matched, elements, unmatched }
}

/// The per-point scoring loop shared by every `match_trace` variant.
fn match_points(
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> (Vec<MatchedPoint>, usize) {
    let (matched, unmatched, _) = match_points_counted(graph, index, points, config);
    (matched, unmatched)
}

/// [`match_points`] that also reports how many candidates were scored,
/// for the matcher's observability counters.
fn match_points_counted(
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> (Vec<MatchedPoint>, usize, u64) {
    let mut matched = Vec::with_capacity(points.len());
    let mut unmatched = 0usize;
    let mut prev_edge: Option<EdgeId> = None;

    // Pre-compute candidate lists once (shared with the look-ahead).
    let cand_lists: Vec<Vec<ScoredCandidate>> = points
        .iter()
        .map(|p| index.scored_candidates(p.pos, p.heading_deg, p.speed_kmh, config))
        .collect();
    let candidates_scored: u64 = cand_lists.iter().map(|c| c.len() as u64).sum();

    for (i, point) in points.iter().enumerate() {
        let _ = point;
        let cands = &cand_lists[i];
        if cands.is_empty() {
            unmatched += 1;
            continue;
        }
        let mut best: Option<(f64, &ScoredCandidate)> = None;
        for sc in cands.iter().take(config.max_candidates) {
            let cand_edge = index.candidate(sc.candidate).edge;
            let mut score = combined(config, sc, connectivity(graph, prev_edge, cand_edge));
            // Look-ahead: the best continuation from this candidate.
            let mut look_edge = cand_edge;
            for d in 1..=config.lookahead {
                let Some(next) = cand_lists.get(i + d) else { break };
                if next.is_empty() {
                    break;
                }
                let mut best_next = 0.0f64;
                let mut best_next_edge = look_edge;
                for nsc in next.iter().take(config.max_candidates) {
                    let nedge = index.candidate(nsc.candidate).edge;
                    let s = combined(
                        config,
                        nsc,
                        connectivity(graph, Some(look_edge), nedge),
                    );
                    if s > best_next {
                        best_next = s;
                        best_next_edge = nedge;
                    }
                }
                score += 0.5f64.powi(d as i32) * best_next;
                look_edge = best_next_edge;
            }
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, sc));
            }
        }
        // lint:allow(panic-free-library): loop above ran >= once (checked)
        let (_, sc) = best.expect("candidate list non-empty");
        let cand = index.candidate(sc.candidate);
        matched.push(MatchedPoint {
            point_index: i,
            element: cand.element,
            edge: cand.edge,
            distance_m: sc.distance_m,
            offset_m: sc.offset_m,
        });
        prev_edge = Some(cand.edge);
    }

    (matched, unmatched, candidates_scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_roadnet::synth::{generate, OuluConfig};
    use taxitrace_roadnet::{dijkstra, CostModel, ElementId};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pt(i: usize, pos: Point, heading: f64, speed: f64) -> RoutePoint {
        RoutePoint {
            point_id: i as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos,
            timestamp: Timestamp::from_secs(i as i64 * 15),
            speed_kmh: speed,
            heading_deg: heading,
            fuel_ml: 0.0,
            truth: PointTruth { seq: i as u32, element: None },
        }
    }

    /// Sample a real route from the synthetic city and check the matcher
    /// recovers its element sequence from clean on-route points.
    #[test]
    fn recovers_route_elements_from_on_route_points() {
        let city = generate(&OuluConfig::default());
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let from = city.od_roads[0].outer_node;
        let to = city.od_roads[1].outer_node;
        let route =
            dijkstra::astar(&city.graph, from, to, CostModel::TravelTime).unwrap();
        let line = route.polyline(&city.graph).unwrap();
        let truth: Vec<ElementId> = route.element_ids(&city.graph);

        // Sample every ~80 m with headings along the line.
        let mut points = Vec::new();
        let n = (line.length() / 80.0) as usize;
        for k in 0..=n {
            let off = line.length() * k as f64 / n as f64;
            points.push(pt(k, line.point_at(off), line.heading_at(off), 35.0));
        }
        let config = MatchConfig::default();
        let matched = match_trace(&city.graph, &index, &points, &config);
        assert_eq!(matched.unmatched, 0);
        // Every matched element must be on the true route.
        let on_route = matched
            .points
            .iter()
            .filter(|m| truth.contains(&m.element))
            .count();
        let frac = on_route as f64 / matched.points.len() as f64;
        assert!(frac > 0.95, "on-route fraction {frac}");
        // The gap-filled element path must cover most of the truth.
        let covered = truth
            .iter()
            .filter(|e| matched.elements.contains(e))
            .count() as f64
            / truth.len() as f64;
        assert!(covered > 0.85, "covered {covered}");
    }

    #[test]
    fn off_map_points_counted_unmatched() {
        let city = generate(&OuluConfig::default());
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let config = MatchConfig::default();
        let points = vec![
            pt(0, Point::new(50_000.0, 50_000.0), 0.0, 30.0),
            pt(1, Point::new(0.0, 0.0), 90.0, 30.0),
        ];
        let matched = match_trace(&city.graph, &index, &points, &config);
        assert_eq!(matched.unmatched, 1);
        assert_eq!(matched.points.len(), 1);
    }

    #[test]
    fn empty_trace() {
        let city = generate(&OuluConfig::default());
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let matched = match_trace(&city.graph, &index, &[], &MatchConfig::default());
        assert!(matched.points.is_empty());
        assert!(matched.elements.is_empty());
        assert_eq!(matched.matched_fraction(), 1.0);
    }
}
