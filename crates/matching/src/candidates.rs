use taxitrace_geo::{
    heading_diff_deg, BBox, Point, Polyline, RTree, RTreeEntry,
};
use taxitrace_roadnet::{EdgeId, ElementId, FlowDirection, RoadGraph, TrafficElement};

use crate::MatchConfig;

/// One indexable traffic element.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub element: ElementId,
    pub edge: EdgeId,
    pub geometry: Polyline,
    pub flow: FlowDirection,
}

/// A candidate scored against one GPS point.
#[derive(Debug, Clone, Copy)]
pub struct ScoredCandidate {
    /// Index into the [`CandidateIndex`] candidate table.
    pub candidate: usize,
    pub distance_m: f64,
    pub offset_m: f64,
    /// Distance score in `[0, 1]`.
    pub s_dist: f64,
    /// Orientation score in `[0, 1]`.
    pub s_head: f64,
}

/// R-tree-backed candidate lookup over traffic elements — the GiST-index
/// role PostGIS plays in the paper's stack.
#[derive(Debug)]
pub struct CandidateIndex {
    candidates: Vec<Candidate>,
    tree: RTree<usize>,
}

impl CandidateIndex {
    /// Builds the index for a road graph and its source elements.
    ///
    /// Elements whose id the graph does not know (should not happen for a
    /// well-formed map) are skipped.
    pub fn new(graph: &RoadGraph, elements: &[TrafficElement]) -> Self {
        let mut candidates = Vec::with_capacity(elements.len());
        let mut entries = Vec::with_capacity(elements.len());
        for e in elements {
            let Some(edge) = graph.edge_of_element(e.id) else { continue };
            let idx = candidates.len();
            entries.push(RTreeEntry { bbox: e.geometry.bbox(), item: idx });
            candidates.push(Candidate {
                element: e.id,
                edge,
                geometry: e.geometry.clone(),
                flow: e.flow,
            });
        }
        Self { candidates, tree: RTree::bulk_load(entries) }
    }

    /// Candidate table.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    #[inline]
    pub fn candidate(&self, i: usize) -> &Candidate {
        &self.candidates[i]
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// All candidates within `radius` of `p`, scored against the point's
    /// heading. Results are sorted by descending combined
    /// `w_dist·s_dist + w_head·s_head`.
    pub fn scored_candidates(
        &self,
        p: Point,
        heading_deg: f64,
        speed_kmh: f64,
        config: &MatchConfig,
    ) -> Vec<ScoredCandidate> {
        let query = BBox::from_point(p).expand(config.radius_m);
        let mut out = Vec::new();
        self.tree.query(&query, |entry| {
            let cand = &self.candidates[entry.item];
            let proj = cand.geometry.project(p);
            if proj.distance > config.radius_m {
                return;
            }
            let s_dist = (-proj.distance * proj.distance
                / (2.0 * config.sigma_m * config.sigma_m))
                .exp();
            let s_head = self.heading_score(cand, proj.offset, heading_deg, speed_kmh, config);
            out.push(ScoredCandidate {
                candidate: entry.item,
                distance_m: proj.distance,
                offset_m: proj.offset,
                s_dist,
                s_head,
            });
        });
        out.sort_by(|a, b| {
            let sa = config.w_dist * a.s_dist + config.w_head * a.s_head;
            let sb = config.w_dist * b.s_dist + config.w_head * b.s_head;
            sb.total_cmp(&sa).then(a.candidate.cmp(&b.candidate))
        });
        out
    }

    /// Orientation score: cosine similarity between the GPS heading and the
    /// element direction at the projection, honouring one-way flow — this is
    /// the paper's "enhanced with information retrieved from the digital map
    /// (like road directions)".
    fn heading_score(
        &self,
        cand: &Candidate,
        offset: f64,
        heading_deg: f64,
        speed_kmh: f64,
        config: &MatchConfig,
    ) -> f64 {
        let elem_heading = cand.geometry.heading_at(offset);
        let diff = match cand.flow {
            // Two-way: either orientation is legal; take the better one.
            FlowDirection::Both => {
                let d1 = heading_diff_deg(heading_deg, elem_heading);
                let d2 = heading_diff_deg(heading_deg, elem_heading + 180.0);
                d1.min(d2)
            }
            FlowDirection::WithDigitization => heading_diff_deg(heading_deg, elem_heading),
            FlowDirection::AgainstDigitization => {
                heading_diff_deg(heading_deg, elem_heading + 180.0)
            }
        };
        let score = (diff.to_radians().cos()).max(0.0);
        if speed_kmh < config.heading_trust_kmh {
            // Heading from a (nearly) stationary GPS fix is noise.
            0.5 + 0.5 * score * (speed_kmh / config.heading_trust_kmh)
        } else {
            score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, LocalProjection};
    use taxitrace_roadnet::FunctionalClass;

    fn elem(id: u64, pts: &[(f64, f64)], flow: FlowDirection) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: 40.0,
            flow,
        }
    }

    /// Two parallel one-way streets 30 m apart, plus stubs for junctions.
    fn setup() -> (RoadGraph, Vec<TrafficElement>) {
        let mut els = vec![
            elem(1, &[(0.0, 0.0), (500.0, 0.0)], FlowDirection::WithDigitization), // eastbound
            elem(2, &[(500.0, 30.0), (0.0, 30.0)], FlowDirection::WithDigitization), // westbound
        ];
        for (k, &(x, y)) in [(0.0, 0.0), (500.0, 0.0), (0.0, 30.0), (500.0, 30.0)]
            .iter()
            .enumerate()
        {
            els.push(elem(10 + k as u64, &[(x, y), (x, y - 50.0 - k as f64)], FlowDirection::Both));
            els.push(elem(20 + k as u64, &[(x, y), (x - 50.0 - k as f64, y + 60.0)], FlowDirection::Both));
        }
        let g = RoadGraph::build(&els, LocalProjection::new(GeoPoint::new(25.0, 65.0)))
            .unwrap();
        (g, els)
    }

    #[test]
    fn direction_disambiguates_parallel_oneways() {
        let (g, els) = setup();
        let index = CandidateIndex::new(&g, &els);
        let config = MatchConfig::default();
        // A point between the two streets (y = 15), driving east.
        let scored = index.scored_candidates(Point::new(250.0, 14.0), 90.0, 40.0, &config);
        assert!(!scored.is_empty());
        let best = index.candidate(scored[0].candidate);
        assert_eq!(best.element, ElementId(1), "eastbound street wins for eastbound heading");
        // Driving west: the westbound street wins despite being slightly farther.
        let scored = index.scored_candidates(Point::new(250.0, 16.0), 270.0, 40.0, &config);
        let best = index.candidate(scored[0].candidate);
        assert_eq!(best.element, ElementId(2));
    }

    #[test]
    fn radius_limits_candidates() {
        let (g, els) = setup();
        let index = CandidateIndex::new(&g, &els);
        let config = MatchConfig { radius_m: 20.0, ..MatchConfig::default() };
        let scored = index.scored_candidates(Point::new(250.0, 5.0), 90.0, 40.0, &config);
        // Only the eastbound street is within 20 m.
        assert_eq!(scored.len(), 1);
        let far = index.scored_candidates(Point::new(250.0, 500.0), 90.0, 40.0, &config);
        assert!(far.is_empty());
    }

    #[test]
    fn stationary_points_trust_distance_over_heading() {
        let (g, els) = setup();
        let index = CandidateIndex::new(&g, &els);
        let config = MatchConfig::default();
        // Stationary (speed 0) with a nonsense heading, right on street 1.
        let scored = index.scored_candidates(Point::new(250.0, 1.0), 270.0, 0.0, &config);
        let best = index.candidate(scored[0].candidate);
        assert_eq!(best.element, ElementId(1), "distance dominates at standstill");
    }

    #[test]
    fn scores_are_normalised() {
        let (g, els) = setup();
        let index = CandidateIndex::new(&g, &els);
        let config = MatchConfig::default();
        for sc in index.scored_candidates(Point::new(250.0, 10.0), 90.0, 30.0, &config) {
            assert!((0.0..=1.0).contains(&sc.s_dist));
            assert!((0.0..=1.0).contains(&sc.s_head));
            assert!(sc.distance_m <= config.radius_m);
        }
    }
}
