//! Ground-truth evaluation of map-matching output.
//!
//! The simulator records which traffic element the vehicle was really on
//! under every route point, enabling the per-point accuracy evaluation that
//! the paper (working with real, truth-less data) could only argue
//! qualitatively.

use taxitrace_roadnet::RoadGraph;
use taxitrace_traces::RoutePoint;

use crate::types::MatchedTrace;

/// Accuracy of a matched trace against simulator ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchAccuracy {
    /// Points with a ground-truth element that were matched at all.
    pub evaluated: usize,
    /// … of which the matched element is exactly the true element.
    pub element_correct: usize,
    /// … of which the matched edge contains the true element.
    pub edge_correct: usize,
    /// Mean point-to-matched-element distance, metres.
    pub mean_distance_m: f64,
}

impl MatchAccuracy {
    /// Exact element-level accuracy.
    pub fn element_accuracy(&self) -> f64 {
        if self.evaluated == 0 {
            return 1.0;
        }
        self.element_correct as f64 / self.evaluated as f64
    }

    /// Edge-level accuracy (right road, maybe neighbouring element).
    pub fn edge_accuracy(&self) -> f64 {
        if self.evaluated == 0 {
            return 1.0;
        }
        self.edge_correct as f64 / self.evaluated as f64
    }

    /// Merges another evaluation into this one.
    pub fn merge(&mut self, other: &MatchAccuracy) {
        let total = self.evaluated + other.evaluated;
        if total > 0 {
            self.mean_distance_m = (self.mean_distance_m * self.evaluated as f64
                + other.mean_distance_m * other.evaluated as f64)
                / total as f64;
        }
        self.evaluated = total;
        self.element_correct += other.element_correct;
        self.edge_correct += other.edge_correct;
    }
}

/// How close to a junction a point must be for the junction-zone tolerance
/// to apply, metres (≈ 3σ of the simulated GPS noise plus the stop-line
/// offset).
const JUNCTION_ZONE_M: f64 = 20.0;

/// Evaluates a matched trace against the points' ground truth.
///
/// Edge-level correctness applies a junction-zone tolerance for
/// *near-stationary* points: a vehicle stopped at the stop line sits on the
/// element boundary, where identity is undefined to within GPS noise, so
/// either adjacent edge counts. Moving points stay strict — a moving
/// vehicle has a definite element, and getting it right through a junction
/// is exactly what heading/connectivity-aware matching is for. Exact
/// element accuracy (`element_correct`) is always strict.
pub fn evaluate(
    graph: &RoadGraph,
    matched: &MatchedTrace,
    points: &[RoutePoint],
) -> MatchAccuracy {
    let mut acc = MatchAccuracy::default();
    let mut dist_sum = 0.0;
    for m in &matched.points {
        let p = &points[m.point_index];
        let Some(truth_elem) = p.truth.element else {
            continue;
        };
        acc.evaluated += 1;
        dist_sum += m.distance_m;
        if truth_elem == m.element {
            acc.element_correct += 1;
            acc.edge_correct += 1;
            continue;
        }
        let Some(truth_edge) = graph.edge_of_element(truth_elem) else {
            continue;
        };
        if truth_edge == m.edge {
            acc.edge_correct += 1;
            continue;
        }
        // Junction-zone tolerance (stationary points only).
        if p.speed_kmh >= 5.0 {
            continue;
        }
        let te = graph.edge(truth_edge);
        let me = graph.edge(m.edge);
        let shared = [te.from, te.to]
            .into_iter()
            .find(|n| *n == me.from || *n == me.to);
        if let Some(n) = shared {
            if graph.node_point(n).distance(p.pos) <= JUNCTION_ZONE_M {
                acc.edge_correct += 1;
            }
        }
    }
    if acc.evaluated > 0 {
        acc.mean_distance_m = dist_sum / acc.evaluated as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hmm, incremental, nearest, CandidateIndex, MatchConfig};
    use taxitrace_roadnet::synth::{generate, OuluConfig};
    use taxitrace_traces::{simulate_fleet, FleetConfig};
    use taxitrace_weather::WeatherModel;

    /// End-to-end: simulated (noisy, corrupted) sessions; the incremental
    /// matcher must be accurate, beat or equal nearest-edge, and the HMM
    /// must be in the same band — the shape claim of §IV-E.
    #[test]
    fn matchers_ranked_on_simulated_data() {
        let city = generate(&OuluConfig::default());
        let weather = WeatherModel::new(42);
        let data = simulate_fleet(&city, &weather, &FleetConfig::tiny(33));
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let config = MatchConfig::default();

        let mut inc = MatchAccuracy::default();
        let mut nea = MatchAccuracy::default();
        let mut hm = MatchAccuracy::default();
        for session in data.sessions.iter().take(12) {
            let pts = session.points_in_true_order();
            // Only evaluate the driving parts (points on an element).
            inc.merge(&evaluate(
                &city.graph,
                &incremental::match_trace(&city.graph, &index, &pts, &config),
                &pts,
            ));
            nea.merge(&evaluate(
                &city.graph,
                &nearest::match_trace(&city.graph, &index, &pts, &config),
                &pts,
            ));
            hm.merge(&evaluate(
                &city.graph,
                &hmm::match_trace(&city.graph, &index, &pts, &config),
                &pts,
            ));
        }
        assert!(inc.evaluated > 150, "evaluated {}", inc.evaluated);
        assert!(
            inc.edge_accuracy() > 0.85,
            "incremental edge accuracy {:.3}",
            inc.edge_accuracy()
        );
        assert!(
            inc.edge_accuracy() >= nea.edge_accuracy() - 0.02,
            "incremental ({:.3}) should not lose to nearest ({:.3})",
            inc.edge_accuracy(),
            nea.edge_accuracy()
        );
        assert!(
            hm.edge_accuracy() > 0.85,
            "hmm edge accuracy {:.3}",
            hm.edge_accuracy()
        );
    }

    #[test]
    fn merge_combines_counts() {
        let a = MatchAccuracy {
            evaluated: 10,
            element_correct: 9,
            edge_correct: 10,
            mean_distance_m: 2.0,
        };
        let mut b = MatchAccuracy {
            evaluated: 30,
            element_correct: 15,
            edge_correct: 20,
            mean_distance_m: 6.0,
        };
        b.merge(&a);
        assert_eq!(b.evaluated, 40);
        assert_eq!(b.element_correct, 24);
        assert!((b.mean_distance_m - 5.0).abs() < 1e-9);
        assert!((b.element_accuracy() - 0.6).abs() < 1e-9);
    }
}
