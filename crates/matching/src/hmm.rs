//! HMM/Viterbi map-matching in the spirit of Lou et al. (2009)
//! ("Map-matching for low-sampling-rate GPS trajectories"), the stronger
//! baseline the paper's related-work section points to.
//!
//! States are candidate elements per point; emissions are the Gaussian
//! distance score; transitions prefer graph-connected candidates. Unlike the
//! incremental matcher this performs global decoding over the whole trace,
//! at higher cost.

use taxitrace_roadnet::{EdgeId, RoadGraph};
use taxitrace_traces::RoutePoint;

use crate::candidates::CandidateIndex;
use crate::path::element_path_with;
use crate::scratch::MatchScratch;
use crate::types::{MatchConfig, MatchedPoint, MatchedTrace};

fn transition(graph: &RoadGraph, a: EdgeId, b: EdgeId) -> f64 {
    if a == b {
        return 1.0;
    }
    let ea = graph.edge(a);
    let eb = graph.edge(b);
    if ea.from == eb.from || ea.from == eb.to || ea.to == eb.from || ea.to == eb.to {
        return 0.8;
    }
    for node in [ea.from, ea.to] {
        for &(_, nb) in graph.neighbors(node) {
            if nb == eb.from || nb == eb.to {
                return 0.5;
            }
        }
    }
    0.05
}

/// Matches a trace with Viterbi decoding.
pub fn match_trace(
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    match_trace_with(&mut MatchScratch::new(), graph, index, points, config)
}

/// [`match_trace`] with caller-owned scratch, reused across traces.
pub fn match_trace_with(
    scratch: &mut MatchScratch,
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    // Candidate lists (bounded).
    let cand_lists: Vec<Vec<crate::candidates::ScoredCandidate>> = points
        .iter()
        .map(|p| {
            let mut c = index.scored_candidates(p.pos, p.heading_deg, p.speed_kmh, config);
            c.truncate(config.max_candidates);
            c
        })
        .collect();

    let mut matched: Vec<MatchedPoint> = Vec::with_capacity(points.len());
    let mut unmatched = 0usize;

    // Decode each maximal run of points that have candidates.
    let mut i = 0;
    while i < points.len() {
        if cand_lists[i].is_empty() {
            unmatched += 1;
            i += 1;
            continue;
        }
        let mut j = i;
        while j < points.len() && !cand_lists[j].is_empty() {
            j += 1;
        }
        decode_run(graph, index, &cand_lists[i..j], i, config, &mut matched);
        i = j;
    }

    let elements = element_path_with(scratch, graph, &matched, config.gap_fill);
    MatchedTrace { points: matched, elements, unmatched }
}

fn decode_run(
    graph: &RoadGraph,
    index: &CandidateIndex,
    cands: &[Vec<crate::candidates::ScoredCandidate>],
    base: usize,
    config: &MatchConfig,
    out: &mut Vec<MatchedPoint>,
) {
    let n = cands.len();
    // dp[t][k] = (score, argmax prev k)
    let mut dp: Vec<Vec<(f64, usize)>> = Vec::with_capacity(n);
    let emission = |sc: &crate::candidates::ScoredCandidate| {
        (config.w_dist * sc.s_dist + config.w_head * sc.s_head).max(1e-9).ln()
    };
    dp.push(cands[0].iter().map(|sc| (emission(sc), usize::MAX)).collect());
    for t in 1..n {
        let mut row = Vec::with_capacity(cands[t].len());
        for sc in &cands[t] {
            let edge_b = index.candidate(sc.candidate).edge;
            let mut best = (f64::NEG_INFINITY, 0usize);
            for (k, prev_sc) in cands[t - 1].iter().enumerate() {
                let edge_a = index.candidate(prev_sc.candidate).edge;
                let s = dp[t - 1][k].0 + transition(graph, edge_a, edge_b).ln();
                if s > best.0 {
                    best = (s, k);
                }
            }
            row.push((best.0 + emission(sc), best.1));
        }
        dp.push(row);
    }
    // Backtrack.
    let mut k = dp[n - 1]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .map(|(k, _)| k)
        // lint:allow(panic-free-library): rows were checked non-empty above
        .expect("non-empty candidate row");
    let mut picks = vec![0usize; n];
    for t in (0..n).rev() {
        picks[t] = k;
        if t > 0 {
            k = dp[t][k].1;
        }
    }
    for (t, &pick) in picks.iter().enumerate() {
        let sc = &cands[t][pick];
        let cand = index.candidate(sc.candidate);
        out.push(MatchedPoint {
            point_index: base + t,
            element: cand.element,
            edge: cand.edge,
            distance_m: sc.distance_m,
            offset_m: sc.offset_m,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_roadnet::synth::{generate, OuluConfig};
    use taxitrace_roadnet::{dijkstra, CostModel, ElementId};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pt(i: usize, pos: Point, heading: f64) -> RoutePoint {
        RoutePoint {
            point_id: i as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos,
            timestamp: Timestamp::from_secs(i as i64 * 15),
            speed_kmh: 35.0,
            heading_deg: heading,
            fuel_ml: 0.0,
            truth: PointTruth { seq: i as u32, element: None },
        }
    }

    #[test]
    fn viterbi_recovers_route() {
        let city = generate(&OuluConfig::default());
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let route = dijkstra::astar(
            &city.graph,
            city.od_roads[0].outer_node,
            city.od_roads[2].outer_node,
            CostModel::TravelTime,
        )
        .unwrap();
        let line = route.polyline(&city.graph).unwrap();
        let truth: Vec<ElementId> = route.element_ids(&city.graph);
        let n = (line.length() / 90.0) as usize;
        let points: Vec<RoutePoint> = (0..=n)
            .map(|k| {
                let off = line.length() * k as f64 / n as f64;
                pt(k, line.point_at(off), line.heading_at(off))
            })
            .collect();
        let matched = match_trace(&city.graph, &index, &points, &MatchConfig::default());
        assert_eq!(matched.unmatched, 0);
        let on_route = matched
            .points
            .iter()
            .filter(|m| truth.contains(&m.element))
            .count() as f64
            / matched.points.len() as f64;
        assert!(on_route > 0.95, "on-route {on_route}");
    }

    #[test]
    fn handles_gaps_in_candidates() {
        let city = generate(&OuluConfig::default());
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let points = vec![
            pt(0, Point::new(75.0, 2.0), 90.0),
            pt(1, Point::new(90_000.0, 0.0), 90.0), // off-map
            pt(2, Point::new(225.0, 2.0), 90.0),
        ];
        let matched = match_trace(&city.graph, &index, &points, &MatchConfig::default());
        assert_eq!(matched.unmatched, 1);
        assert_eq!(matched.points.len(), 2);
    }
}
