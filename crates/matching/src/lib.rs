//! Map-matching (§IV-E): aligning GPS route points on the digital map.
//!
//! The paper uses the incremental map-matching algorithm of Brakatsoulas et
//! al. (VLDB'05), "enhanced with information retrieved from the digital map
//! (like road directions)", with pgRouting's Dijkstra filling gaps "when
//! data points are too far from each other". Sampling is uneven (points
//! arrive on significant driving changes only), which is exactly the regime
//! where incremental matching with look-ahead pays off.
//!
//! This crate implements:
//!
//! * [`CandidateIndex`] — R-tree candidate lookup over traffic elements,
//!   with distance, orientation and one-way direction scoring;
//! * [`incremental`] — the paper's matcher: greedy with look-ahead,
//!   connectivity-aware, direction-constrained;
//! * [`nearest`] — point-wise nearest-element baseline (no temporal
//!   context), the natural ablation;
//! * [`hmm`] — a Viterbi matcher in the spirit of Lou et al. (2009), the
//!   stronger baseline for uneven sampling;
//! * [`path`] — Dijkstra gap filling: converting per-point matches into a
//!   contiguous traffic-element sequence;
//! * [`accuracy`] — ground-truth evaluation (the simulator knows the true
//!   element under every point).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod accuracy;
mod candidates;
pub mod hmm;
pub mod incremental;
pub mod nearest;
pub mod scratch;
mod path;
mod types;

pub use accuracy::{evaluate, MatchAccuracy};
pub use candidates::{Candidate, CandidateIndex, ScoredCandidate};
pub use path::{element_path, element_path_blind, element_path_budgeted, element_path_with};
pub use scratch::{record_scratch_metrics, MatchScratch, PathCache};
pub use types::{MatchConfig, MatchedPoint, MatchedTrace};
