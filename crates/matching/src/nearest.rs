//! Point-wise nearest-element baseline: no heading, no connectivity, no
//! temporal context. This is the ablation every map-matching paper compares
//! against; it goes wrong near junctions and on parallel one-way pairs.

use taxitrace_roadnet::RoadGraph;
use taxitrace_traces::RoutePoint;

use crate::candidates::CandidateIndex;
use crate::path::element_path_with;
use crate::scratch::MatchScratch;
use crate::types::{MatchConfig, MatchedPoint, MatchedTrace};

/// Matches each point to the geometrically nearest element within the
/// radius.
pub fn match_trace(
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    match_trace_with(&mut MatchScratch::new(), graph, index, points, config)
}

/// [`match_trace`] with caller-owned scratch, reused across traces.
pub fn match_trace_with(
    scratch: &mut MatchScratch,
    graph: &RoadGraph,
    index: &CandidateIndex,
    points: &[RoutePoint],
    config: &MatchConfig,
) -> MatchedTrace {
    let mut matched = Vec::with_capacity(points.len());
    let mut unmatched = 0usize;
    for (i, p) in points.iter().enumerate() {
        let cands = index.scored_candidates(p.pos, p.heading_deg, p.speed_kmh, config);
        let best = cands.iter().min_by(|a, b| {
            a.distance_m.total_cmp(&b.distance_m).then(a.candidate.cmp(&b.candidate))
        });
        match best {
            Some(sc) => {
                let cand = index.candidate(sc.candidate);
                matched.push(MatchedPoint {
                    point_index: i,
                    element: cand.element,
                    edge: cand.edge,
                    distance_m: sc.distance_m,
                    offset_m: sc.offset_m,
                });
            }
            None => unmatched += 1,
        }
    }
    let elements = element_path_with(scratch, graph, &matched, config.gap_fill);
    MatchedTrace { points: matched, elements, unmatched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_roadnet::synth::{generate, OuluConfig};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, TaxiId, TripId};

    fn pt(i: usize, pos: Point) -> RoutePoint {
        RoutePoint {
            point_id: i as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos,
            timestamp: Timestamp::from_secs(i as i64 * 15),
            speed_kmh: 30.0,
            heading_deg: 90.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: i as u32, element: None },
        }
    }

    #[test]
    fn picks_geometrically_nearest() {
        let city = generate(&OuluConfig::default());
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let config = MatchConfig::default();
        // A point 5 m north of a horizontal street at y = 0.
        let m = match_trace(&city.graph, &index, &[pt(0, Point::new(75.0, 5.0))], &config);
        assert_eq!(m.points.len(), 1);
        assert!(m.points[0].distance_m <= 5.5, "{}", m.points[0].distance_m);
    }
}
