//! Gap filling: turning per-point matches into a contiguous traffic-element
//! sequence, using Dijkstra "to fill the gaps, when data points are too far
//! from each other" (§IV-E; pgRouting's role in the paper's stack).

use taxitrace_geo::Point;
use taxitrace_roadnet::{dijkstra, Edge, ElementId, NodeId, RoadGraph};

use crate::scratch::MatchScratch;
use crate::types::MatchedPoint;

/// Builds the travel-order element sequence from per-point matches using
/// one-shot scratch space. Prefer [`element_path_with`] on hot paths — it
/// reuses search arrays and memoises gap-fill routes across traces.
pub fn element_path(graph: &RoadGraph, matched: &[MatchedPoint], gap_fill: bool) -> Vec<ElementId> {
    element_path_with(&mut MatchScratch::new(), graph, matched, gap_fill)
}

/// Builds the travel-order element sequence from per-point matches.
///
/// Consecutive matches on the same edge are walked along the edge's element
/// chain; transitions between edges that share a junction need no filling;
/// farther transitions are routed (goal-directed A*, memoised in
/// `scratch.cache`) when `gap_fill` is on (otherwise the sequence simply
/// jumps).
pub fn element_path_with(
    scratch: &mut MatchScratch,
    graph: &RoadGraph,
    matched: &[MatchedPoint],
    gap_fill: bool,
) -> Vec<ElementId> {
    element_path_budgeted(scratch, graph, matched, gap_fill, u64::MAX)
}

/// [`element_path_with`] with a per-query node-expansion budget on the
/// gap-fill router. A budget-exhausted query degrades gracefully: the
/// element sequence jumps the gap (same as `gap_fill = false` for that one
/// transition), the fallback is counted in
/// [`MatchScratch::gaps_budget_exhausted`], and — unlike found routes and
/// genuinely unroutable pairs — the non-result is never cached, because it
/// is a property of the budget, not of the graph.
pub fn element_path_budgeted(
    scratch: &mut MatchScratch,
    graph: &RoadGraph,
    matched: &[MatchedPoint],
    gap_fill: bool,
    max_expansions: u64,
) -> Vec<ElementId> {
    element_path_inner(graph, matched, gap_fill, &mut |exit, entry| {
        // Route across the gap. The memoised value is exactly what the A*
        // query (itself bit-equal to the Dijkstra reference) would
        // recompute, so the cache affects speed only.
        let MatchScratch { search, cache, gaps_budget_exhausted, .. } = scratch;
        let model = dijkstra::CostModel::Distance;
        let key = (exit, entry, model);
        if let Some(cached) = cache.lookup(&key) {
            return cached;
        }
        match dijkstra::astar_bounded(search, graph, exit, entry, model, max_expansions) {
            dijkstra::SearchOutcome::Found(route) => {
                let elements = route.element_ids(graph);
                cache.insert(key, Some(elements.clone()));
                Some(elements)
            }
            dijkstra::SearchOutcome::Unreachable => {
                cache.insert(key, None);
                None
            }
            dijkstra::SearchOutcome::BudgetExhausted { .. } => {
                *gaps_budget_exhausted += 1;
                None
            }
        }
    })
}

/// Pre-optimisation reference of [`element_path`]: blind Dijkstra per gap
/// with per-query allocation and no memoisation. Kept so benches and the
/// `repro --bench-json` A/B can quantify the routing-core speedup against
/// the behaviour this crate shipped with.
pub fn element_path_blind(
    graph: &RoadGraph,
    matched: &[MatchedPoint],
    gap_fill: bool,
) -> Vec<ElementId> {
    element_path_inner(graph, matched, gap_fill, &mut |exit, entry| {
        dijkstra::shortest_path(graph, exit, entry, dijkstra::CostModel::Distance)
            .map(|route| route.element_ids(graph))
    })
}

fn element_path_inner(
    graph: &RoadGraph,
    matched: &[MatchedPoint],
    gap_fill: bool,
    route: &mut dyn FnMut(NodeId, NodeId) -> Option<Vec<ElementId>>,
) -> Vec<ElementId> {
    let mut out: Vec<ElementId> = Vec::new();
    let mut push = |out: &mut Vec<ElementId>, e: ElementId| {
        if out.last() != Some(&e) {
            out.push(e);
        }
    };

    let mut prev: Option<&MatchedPoint> = None;
    for m in matched {
        let Some(p) = prev else {
            push(&mut out, m.element);
            prev = Some(m);
            continue;
        };
        if p.element == m.element {
            prev = Some(m);
            continue;
        }
        if p.edge == m.edge {
            // Walk the edge's element chain between the two elements.
            let edge = graph.edge(m.edge);
            let i1 = elem_index(edge, p.element);
            let i2 = elem_index(edge, m.element);
            if let (Some(i1), Some(i2)) = (i1, i2) {
                if i1 < i2 {
                    for e in &edge.elements[i1 + 1..=i2] {
                        push(&mut out, *e);
                    }
                } else {
                    for e in edge.elements[i2..i1].iter().rev() {
                        push(&mut out, *e);
                    }
                }
            } else {
                push(&mut out, m.element);
            }
        } else {
            let e1 = graph.edge(p.edge);
            let e2 = graph.edge(m.edge);
            if let Some(shared) = shared_node(e1, e2) {
                // Adjacent edges: walk out of e1 towards the junction and
                // into e2 away from it.
                walk_to_node(e1, p.element, shared, &mut out, &mut push);
                walk_from_node(e2, m.element, shared, &mut out, &mut push);
            } else if gap_fill {
                let exit = nearest_endpoint(graph, e1, midpoint(e2));
                let entry = nearest_endpoint(graph, e2, graph.node_point(exit));
                walk_to_node(e1, p.element, exit, &mut out, &mut push);
                if let Some(route_elements) = route(exit, entry) {
                    for &e in &route_elements {
                        push(&mut out, e);
                    }
                }
                walk_from_node(e2, m.element, entry, &mut out, &mut push);
            } else {
                push(&mut out, m.element);
            }
        }
        push(&mut out, m.element);
        prev = Some(m);
    }
    out
}

fn elem_index(edge: &Edge, e: ElementId) -> Option<usize> {
    edge.elements.iter().position(|&x| x == e)
}

fn shared_node(a: &Edge, b: &Edge) -> Option<NodeId> {
    [a.from, a.to].into_iter().find(|&n| n == b.from || n == b.to)
}

fn midpoint(e: &Edge) -> Point {
    e.geometry.point_at(e.length_m / 2.0)
}

fn nearest_endpoint(graph: &RoadGraph, e: &Edge, target: Point) -> NodeId {
    let df = graph.node_point(e.from).distance_sq(target);
    let dt = graph.node_point(e.to).distance_sq(target);
    if df <= dt {
        e.from
    } else {
        e.to
    }
}

/// Pushes the elements of `edge` from `from_elem` (exclusive) out to the
/// `node` end (inclusive).
fn walk_to_node(
    edge: &Edge,
    from_elem: ElementId,
    node: NodeId,
    out: &mut Vec<ElementId>,
    push: &mut impl FnMut(&mut Vec<ElementId>, ElementId),
) {
    let Some(i) = elem_index(edge, from_elem) else { return };
    if node == edge.to {
        for e in &edge.elements[i + 1..] {
            push(out, *e);
        }
    } else {
        for e in edge.elements[..i].iter().rev() {
            push(out, *e);
        }
    }
}

/// Pushes the elements of `edge` from the `node` end up to `to_elem`
/// (exclusive — the caller pushes the target element itself).
fn walk_from_node(
    edge: &Edge,
    to_elem: ElementId,
    node: NodeId,
    out: &mut Vec<ElementId>,
    push: &mut impl FnMut(&mut Vec<ElementId>, ElementId),
) {
    let Some(i) = elem_index(edge, to_elem) else { return };
    if node == edge.from {
        for e in &edge.elements[..i] {
            push(out, *e);
        }
    } else {
        for e in edge.elements[i + 1..].iter().rev() {
            push(out, *e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, LocalProjection, Polyline};
    use taxitrace_roadnet::{FlowDirection, FunctionalClass, TrafficElement};

    fn elem(id: u64, pts: &[(f64, f64)]) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: 40.0,
            flow: FlowDirection::Both,
        }
    }

    /// A straight street split into 3 elements between two junctions, plus
    /// stubs, and a second street after a missing middle (gap).
    fn setup() -> (RoadGraph, Vec<TrafficElement>) {
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)]),
            elem(2, &[(100.0, 0.0), (200.0, 0.0)]),
            elem(3, &[(200.0, 0.0), (300.0, 0.0)]),
            // stubs at junctions
            elem(10, &[(0.0, 0.0), (0.0, 50.0)]),
            elem(11, &[(0.0, 0.0), (0.0, -50.0)]),
            elem(12, &[(300.0, 0.0), (300.0, 50.0)]),
            elem(13, &[(300.0, 0.0), (300.0, -50.0)]),
            // continuation east
            elem(4, &[(300.0, 0.0), (400.0, 0.0)]),
            elem(14, &[(400.0, 0.0), (400.0, 50.0)]),
            elem(15, &[(400.0, 0.0), (400.0, -50.0)]),
        ];
        let g = RoadGraph::build(&els, LocalProjection::new(GeoPoint::new(25.0, 65.0)))
            .unwrap();
        (g, els)
    }

    fn mp(i: usize, g: &RoadGraph, e: u64, off: f64) -> MatchedPoint {
        let edge = g.edge_of_element(ElementId(e)).unwrap();
        MatchedPoint { point_index: i, element: ElementId(e), edge, distance_m: 2.0, offset_m: off }
    }

    #[test]
    fn same_edge_walks_intermediate_elements() {
        let (g, _els) = setup();
        // Matched on element 1 then element 3 (element 2 skipped by sampling).
        let matched = vec![mp(0, &g, 1, 50.0), mp(1, &g, 3, 50.0)];
        let path = element_path(&g, &matched, true);
        assert_eq!(path, vec![ElementId(1), ElementId(2), ElementId(3)]);
    }

    #[test]
    fn same_edge_reverse_direction() {
        let (g, _els) = setup();
        let matched = vec![mp(0, &g, 3, 50.0), mp(1, &g, 1, 50.0)];
        let path = element_path(&g, &matched, true);
        assert_eq!(path, vec![ElementId(3), ElementId(2), ElementId(1)]);
    }

    #[test]
    fn adjacent_edges_join_at_junction() {
        let (g, _els) = setup();
        // Element 2 (middle of first edge) then element 4 (next edge).
        let matched = vec![mp(0, &g, 2, 50.0), mp(1, &g, 4, 50.0)];
        let path = element_path(&g, &matched, true);
        assert_eq!(path, vec![ElementId(2), ElementId(3), ElementId(4)]);
    }

    #[test]
    fn dedup_consecutive() {
        let (g, _els) = setup();
        let matched = vec![mp(0, &g, 1, 10.0), mp(1, &g, 1, 60.0), mp(2, &g, 2, 10.0)];
        let path = element_path(&g, &matched, true);
        assert_eq!(path, vec![ElementId(1), ElementId(2)]);
    }

    #[test]
    fn empty_matches() {
        let (g, _els) = setup();
        assert!(element_path(&g, &[], true).is_empty());
    }

    /// A disconnected far segment forces the gap-fill router; repeating
    /// the trace through one scratch must serve the second pass from the
    /// cache with an identical element sequence.
    #[test]
    fn gap_fill_cache_hit_yields_identical_sequence() {
        let (g, _els) = setup();
        // Stub 10 (west end) and stub 14 (east end) lie on edges that
        // share no junction, so the transition needs a routed fill.
        let matched = vec![mp(0, &g, 10, 25.0), mp(1, &g, 14, 25.0)];
        let mut scratch = MatchScratch::new();
        let cold = element_path_with(&mut scratch, &g, &matched, true);
        let (h0, m0) = scratch.cache_stats();
        let warm = element_path_with(&mut scratch, &g, &matched, true);
        let (h1, m1) = scratch.cache_stats();
        assert_eq!(cold, warm, "cache hit must reproduce the uncached path exactly");
        assert_eq!(m1, m0, "second pass must not miss");
        assert!(h1 > h0, "second pass must hit the cache");
        // And both must equal the scratch-free (uncached) computation.
        assert_eq!(cold, element_path(&g, &matched, true));
    }

    /// A zero expansion budget forces the gap-fill fallback: the element
    /// sequence jumps the gap, the fallback is counted, and nothing is
    /// cached — so a later unbudgeted pass recomputes the real route.
    #[test]
    fn exhausted_budget_falls_back_and_never_caches() {
        let (g, _els) = setup();
        let matched = vec![mp(0, &g, 10, 25.0), mp(1, &g, 14, 25.0)];
        let mut scratch = MatchScratch::new();
        let starved = element_path_budgeted(&mut scratch, &g, &matched, true, 0);
        assert_eq!(scratch.gaps_budget_exhausted, 1);
        assert_eq!(scratch.cache.len(), 0, "budget exhaustion must not be memoised");
        // The fallback equals gap_fill = false for that transition.
        let unfilled = element_path(&g, &matched, false);
        assert_eq!(starved, unfilled);
        // With the budget lifted, the same scratch now routes and caches.
        let full = element_path_budgeted(&mut scratch, &g, &matched, true, u64::MAX);
        assert_eq!(full, element_path(&g, &matched, true));
        assert!(!scratch.cache.is_empty());
        assert_eq!(scratch.gaps_budget_exhausted, 1, "no new fallbacks");
    }

    /// A generous budget is observationally identical to unbudgeted fill.
    #[test]
    fn generous_budget_matches_unbudgeted() {
        let (g, _els) = setup();
        let matched = vec![mp(0, &g, 10, 25.0), mp(1, &g, 14, 25.0)];
        let mut scratch = MatchScratch::new();
        let budgeted = element_path_budgeted(&mut scratch, &g, &matched, true, 250_000);
        assert_eq!(budgeted, element_path(&g, &matched, true));
        assert_eq!(scratch.gaps_budget_exhausted, 0);
    }
}
