use serde::{Deserialize, Serialize};
use taxitrace_roadnet::{EdgeId, ElementId};

/// Map-matching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Candidate search radius around each point, metres.
    pub radius_m: f64,
    /// Gaussian sigma of the GPS error model, metres.
    pub sigma_m: f64,
    /// Look-ahead depth of the incremental matcher (0 = pure greedy).
    pub lookahead: usize,
    /// Weight of the distance score.
    pub w_dist: f64,
    /// Weight of the orientation score.
    pub w_head: f64,
    /// Weight of the connectivity score.
    pub w_conn: f64,
    /// Below this speed (km/h) GPS headings are unreliable and the
    /// orientation score is down-weighted.
    pub heading_trust_kmh: f64,
    /// Whether to fill gaps between matched edges with Dijkstra paths.
    pub gap_fill: bool,
    /// Candidates considered per point by the incremental and HMM
    /// matchers (the top-k by score; more buys accuracy, costs time).
    pub max_candidates: usize,
    /// Node-expansion budget per gap-fill routing query. An exhausted
    /// budget falls back to a straight-line gap (the element sequence
    /// simply jumps) instead of searching unbounded; the fallback is
    /// counted in `MatchScratch::gaps_budget_exhausted` and never cached.
    /// The default is far above any query the Oulu-scale graph can pose,
    /// so it only trips under an explicit chaos/stress configuration.
    pub gap_fill_max_expansions: u64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            radius_m: 50.0,
            sigma_m: 8.0,
            lookahead: 1,
            w_dist: 1.0,
            w_head: 0.6,
            w_conn: 0.8,
            heading_trust_kmh: 6.0,
            gap_fill: true,
            max_candidates: 8,
            gap_fill_max_expansions: 250_000,
        }
    }
}

/// The match of one route point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchedPoint {
    /// Index of the point in the input trace.
    pub point_index: usize,
    pub element: ElementId,
    pub edge: EdgeId,
    /// Distance from the GPS point to the matched element, metres.
    pub distance_m: f64,
    /// Arc-length offset of the projection along the element, metres.
    pub offset_m: f64,
}

/// A matched trace: per-point matches (points with no candidate in radius
/// are absent) plus the gap-filled element path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MatchedTrace {
    pub points: Vec<MatchedPoint>,
    /// Contiguous traffic-element sequence in travel order (gap-filled when
    /// the config asks for it).
    pub elements: Vec<ElementId>,
    /// Number of input points that could not be matched (off-map outliers).
    pub unmatched: usize,
}

impl MatchedTrace {
    /// Fraction of input points that were matched.
    pub fn matched_fraction(&self) -> f64 {
        let total = self.points.len() + self.unmatched;
        if total == 0 {
            return 1.0;
        }
        self.points.len() as f64 / total as f64
    }
}
