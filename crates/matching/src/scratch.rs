//! Per-worker scratch for the matching hot path: a reusable A* search
//! state and a bounded cache of gap-fill routes.
//!
//! Gap filling issues a shortest-path query per non-adjacent edge
//! transition. The same `(exit, entry)` junction pairs recur constantly
//! across trips — transitions funnel through the same O-D corridors — so
//! memoising the resulting element sequence converts most queries into a
//! hash lookup. Because the cached value is exactly what the query would
//! recompute (routing is a pure function of the graph), caching changes
//! throughput only, never results.

use std::collections::HashMap;

use taxitrace_roadnet::dijkstra::CostModel;
use taxitrace_roadnet::{ElementId, NodeId, SearchState};

/// Cache key: a routing query's endpoints and cost model.
pub type PathKey = (NodeId, NodeId, CostModel);

/// Bounded memo of gap-fill routes, storing the element-id sequence (or
/// `None` for unreachable pairs, which are worth remembering too).
///
/// Eviction is whole-cache clear on overflow: simple, deterministic, and
/// effectively free at this workload's key cardinality (a few thousand
/// junction pairs per study).
#[derive(Debug, Clone)]
pub struct PathCache {
    map: HashMap<PathKey, Option<Vec<ElementId>>>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for PathCache {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl PathCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { map: HashMap::new(), capacity: capacity.max(1), hits: 0, misses: 0 }
    }

    /// Cached element sequence for `key`, computing and memoising it with
    /// `compute` on a miss. `None` means the pair is unroutable.
    pub fn get_or_insert_with(
        &mut self,
        key: PathKey,
        compute: impl FnOnce() -> Option<Vec<ElementId>>,
    ) -> Option<&[ElementId]> {
        if self.map.contains_key(&key) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.insert(key, compute());
        }
        // lint:allow(panic-free-library): inserted just above when absent
        self.map.get(&key).expect("key just ensured").as_deref()
    }

    /// Cached value for `key` (hit), or `None` and a counted miss. Used by
    /// budgeted gap fill, where a budget-exhausted query must *not* be
    /// memoised — exhaustion is a property of the budget, not the graph —
    /// so lookup and insert have to be separable.
    pub fn lookup(&mut self, key: &PathKey) -> Option<Option<Vec<ElementId>>> {
        match self.map.get(key) {
            Some(value) => {
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoises a *decided* routing result (found route or unroutable
    /// pair), clearing the whole cache first on overflow.
    pub fn insert(&mut self, key: PathKey, value: Option<Vec<ElementId>>) {
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(key, value);
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// All mutable per-worker state a matcher thread holds across traces,
/// plus the audit counters the matcher accumulates while using it.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Reusable A* arrays (generation-stamped; no per-query allocation).
    pub search: SearchState,
    /// Memoised gap-fill routes.
    pub cache: PathCache,
    /// Traces matched through this scratch.
    pub traces: u64,
    /// Candidates scored across all points of all traces.
    pub candidates_scored: u64,
    /// Points that received a match.
    pub points_matched: u64,
    /// Points with no candidate in radius.
    pub points_unmatched: u64,
    /// Gap-fill routing queries abandoned because they hit the
    /// `gap_fill_max_expansions` budget (each fell back to a straight
    /// gap; see [`crate::MatchConfig::gap_fill_max_expansions`]).
    pub gaps_budget_exhausted: u64,
}

impl MatchScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` of the gap-fill cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }
}

/// Publishes the combined counters of per-worker scratches as `match.*`
/// metrics: trace/point/candidate volumes, gap-fill cache efficiency and
/// A* search effort.
pub fn record_scratch_metrics(scratches: &[MatchScratch], registry: &taxitrace_obs::Registry) {
    let mut traces = 0u64;
    let mut candidates = 0u64;
    let mut matched = 0u64;
    let mut unmatched = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut expanded = 0u64;
    let mut entries = 0u64;
    let mut budget_exhausted = 0u64;
    for s in scratches {
        traces += s.traces;
        candidates += s.candidates_scored;
        matched += s.points_matched;
        unmatched += s.points_unmatched;
        hits += s.cache.hits();
        misses += s.cache.misses();
        expanded += s.search.expanded_total();
        entries += s.cache.len() as u64;
        budget_exhausted += s.gaps_budget_exhausted;
    }
    registry.counter("match.traces").add(traces);
    registry.counter("match.candidates_scored").add(candidates);
    registry.counter("match.points_matched").add(matched);
    registry.counter("match.points_unmatched").add(unmatched);
    registry.counter("match.cache_hits").add(hits);
    registry.counter("match.cache_misses").add(misses);
    registry.counter("match.astar_expanded").add(expanded);
    registry.counter("match.gap_budget_exhausted").add(budget_exhausted);
    registry.gauge("match.cache_entries").set(entries as f64);
    registry
        .gauge("match.cache_hit_rate")
        .set(hits as f64 / (hits + misses).max(1) as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u32, b: u32) -> PathKey {
        (NodeId(a), NodeId(b), CostModel::Distance)
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut cache = PathCache::new();
        let compute = || Some(vec![ElementId(7)]);
        assert_eq!(cache.get_or_insert_with(key(1, 2), compute).unwrap(), &[ElementId(7)]);
        assert_eq!(cache.get_or_insert_with(key(1, 2), || panic!("must hit")).unwrap(), &[
            ElementId(7)
        ]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn caches_unroutable_pairs() {
        let mut cache = PathCache::new();
        assert!(cache.get_or_insert_with(key(3, 4), || None).is_none());
        assert!(cache.get_or_insert_with(key(3, 4), || panic!("must hit")).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clears_on_overflow_and_keeps_counting() {
        let mut cache = PathCache::with_capacity(2);
        cache.get_or_insert_with(key(1, 1), || None);
        cache.get_or_insert_with(key(2, 2), || None);
        assert_eq!(cache.len(), 2);
        cache.get_or_insert_with(key(3, 3), || None);
        assert_eq!(cache.len(), 1, "overflow clears before insert");
        // Evicted key recomputes (a miss), not a stale hit.
        let mut recomputed = false;
        cache.get_or_insert_with(key(1, 1), || {
            recomputed = true;
            None
        });
        assert!(recomputed);
        assert_eq!(cache.misses(), 4);
    }
}
