use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use taxitrace_cleaning::TripSegment;
use taxitrace_geo::{BBox, Corridor, Point};
use taxitrace_roadnet::synth::SyntheticCity;
use taxitrace_traces::TaxiId;

/// One named O-D road with its thick geometry.
#[derive(Debug, Clone)]
pub struct OdEndpoint {
    pub name: String,
    pub corridor: Corridor,
}

/// §IV-D selection parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OdConfig {
    /// Half width of the thick geometry, metres.
    pub thick_half_width_m: f64,
    /// Maximum acute angle (degrees) between the route step and the O-D
    /// road axis for a crossing to count — routes must *travel along* the
    /// road, not merely cross it.
    pub max_angle_deg: f64,
    /// The central area transitions must pass through.
    pub center_area: BBox,
    /// Post filter: the segment's first/last route point must lie within
    /// this distance of the origin/destination road axis, metres.
    pub post_filter_dist_m: f64,
    /// The ordered pairs retained by the post filter (paper: T-L, L-T,
    /// T-S, S-T).
    pub studied_pairs: Vec<(String, String)>,
}

impl OdConfig {
    /// Paper-like defaults for a given central area.
    pub fn new(center_area: BBox) -> Self {
        Self {
            thick_half_width_m: 120.0,
            max_angle_deg: 40.0,
            center_area,
            post_filter_dist_m: 300.0,
            studied_pairs: vec![
                ("T".into(), "L".into()),
                ("L".into(), "T".into()),
                ("T".into(), "S".into()),
                ("S".into(), "T".into()),
            ],
        }
    }
}

/// One origin → destination transition extracted from a trip segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Index of the source segment in the analyzed slice.
    pub segment_index: usize,
    pub taxi: TaxiId,
    pub from: String,
    pub to: String,
    /// Point index (within the segment) of the origin crossing.
    pub origin_point: usize,
    /// Point index of the destination crossing.
    pub destination_point: usize,
    /// Funnel survival flags.
    pub within_center: bool,
    pub post_filtered: bool,
}

impl Transition {
    /// "T-S"-style direction label.
    pub fn pair_label(&self) -> String {
        format!("{}-{}", self.from, self.to)
    }
}

/// One row of Table 3.
///
/// Per the paper's §IV-D narration, the published "Trip segments (total)"
/// column already counts only segments that intersect a thick O-D road at a
/// valid angle; we additionally keep the full cleaned-segment count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunnelRow {
    pub taxi: u16,
    /// All cleaned trip segments of the taxi.
    pub segments_total: usize,
    /// Segments intersecting ≥ 1 thick road at a valid angle
    /// (the paper's column 2).
    pub any_crossing: usize,
    /// Segments intersecting ≥ 2 *different* thick roads
    /// (the paper's "Filtered and cleaned" column).
    pub filtered_cleaned: usize,
    pub transitions_total: usize,
    pub within_center: usize,
    pub post_filtered: usize,
}

/// The §IV-D analyzer.
#[derive(Debug, Clone)]
pub struct OdAnalyzer {
    endpoints: Vec<OdEndpoint>,
    config: OdConfig,
}

impl OdAnalyzer {
    /// Builds the analyzer from explicit endpoints.
    pub fn new(endpoints: Vec<OdEndpoint>, config: OdConfig) -> Self {
        Self { endpoints, config }
    }

    /// Builds the analyzer for a synthetic city's named roads.
    pub fn from_city(city: &SyntheticCity) -> Self {
        let config = OdConfig::new(city.center_area);
        let endpoints = city
            .od_roads
            .iter()
            .map(|r| OdEndpoint {
                name: r.name.clone(),
                corridor: Corridor::new(r.axis.clone(), config.thick_half_width_m),
            })
            .collect();
        Self { endpoints, config }
    }

    /// The configured endpoints.
    pub fn endpoints(&self) -> &[OdEndpoint] {
        &self.endpoints
    }

    /// The selection parameters.
    pub fn config(&self) -> &OdConfig {
        &self.config
    }

    /// Analyzes segments and returns every extracted transition with its
    /// funnel-survival flags. Only segments producing a transition appear.
    pub fn transitions(&self, segments: &[TripSegment]) -> Vec<Transition> {
        let mut out = Vec::new();
        for (si, seg) in segments.iter().enumerate() {
            let positions: Vec<Point> = seg.points.iter().map(|p| p.pos).collect();
            // Valid (angle-filtered) crossings per endpoint.
            let mut crossings: Vec<(usize, usize)> = Vec::new(); // (endpoint, point idx)
            for (ei, ep) in self.endpoints.iter().enumerate() {
                for c in ep.corridor.crossings(&positions) {
                    if c.angle_deg <= self.config.max_angle_deg {
                        crossings.push((ei, c.point_index));
                    }
                }
            }
            if crossings.is_empty() {
                continue;
            }
            crossings.sort_by_key(|&(_, pi)| pi);
            // Ordered transition: the first crossing is the origin; the
            // last crossing of a *different* endpoint is the destination.
            let (origin_ep, origin_pi) = crossings[0];
            let dest = crossings
                .iter()
                .rev()
                .find(|&&(ei, _)| ei != origin_ep)
                .copied();
            let Some((dest_ep, dest_pi)) = dest else { continue };
            if dest_pi <= origin_pi {
                continue;
            }

            let within_center = positions[origin_pi..=dest_pi]
                .iter()
                .any(|p| self.config.center_area.contains(*p));

            let from = self.endpoints[origin_ep].name.clone();
            let to = self.endpoints[dest_ep].name.clone();
            let pair_ok = self
                .config
                .studied_pairs
                .iter()
                .any(|(a, b)| *a == from && *b == to);
            let start_ok = self.endpoints[origin_ep]
                .corridor
                .axis()
                .distance_to_point(positions[0])
                <= self.config.post_filter_dist_m;
            let end_ok = self.endpoints[dest_ep]
                .corridor
                .axis()
                // lint:allow(panic-free-library): segments keep >= 2 points
                .distance_to_point(*positions.last().expect("segment non-empty"))
                <= self.config.post_filter_dist_m;
            let post_filtered = within_center && pair_ok && start_ok && end_ok;

            out.push(Transition {
                segment_index: si,
                taxi: seg.taxi,
                from,
                to,
                origin_point: origin_pi,
                destination_point: dest_pi,
                within_center,
                post_filtered,
            });
        }
        out
    }

    /// Number of distinct thick roads a segment crosses at a valid angle.
    pub fn roads_crossed(&self, seg: &TripSegment) -> usize {
        let positions: Vec<Point> = seg.points.iter().map(|p| p.pos).collect();
        self.endpoints
            .iter()
            .filter(|ep| {
                ep.corridor
                    .crossings(&positions)
                    .iter()
                    .any(|c| c.angle_deg <= self.config.max_angle_deg)
            })
            .count()
    }

    /// Counts how many segments intersect ≥ 2 distinct thick roads at a
    /// valid angle (the "Filtered and cleaned" column).
    pub fn filtered_cleaned_count(&self, segments: &[TripSegment]) -> usize {
        segments.iter().filter(|seg| self.roads_crossed(seg) >= 2).count()
    }

    /// Reproduces Table 3: one funnel row per taxi.
    pub fn funnel(&self, segments: &[TripSegment]) -> Vec<FunnelRow> {
        let mut rows: BTreeMap<u16, FunnelRow> = BTreeMap::new();
        for seg in segments {
            rows.entry(seg.taxi.0)
                .or_insert_with(|| FunnelRow { taxi: seg.taxi.0, ..Default::default() })
                .segments_total += 1;
        }
        // Crossing counts per taxi.
        for seg in segments {
            let crossed = self.roads_crossed(seg);
            // lint:allow(panic-free-library): row inserted in the loop above
            let row = rows.get_mut(&seg.taxi.0).expect("row inserted above");
            if crossed >= 1 {
                row.any_crossing += 1;
            }
            if crossed >= 2 {
                row.filtered_cleaned += 1;
            }
        }
        for t in self.transitions(segments) {
            let row = rows
                .entry(t.taxi.0)
                .or_insert_with(|| FunnelRow { taxi: t.taxi.0, ..Default::default() });
            row.transitions_total += 1;
            if t.within_center {
                row.within_center += 1;
            }
            if t.post_filtered {
                row.post_filtered += 1;
            }
        }
        rows.into_values().collect()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use taxitrace_geo::{GeoPoint, Polyline};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, RoutePoint, TripId};

    fn analyzer() -> OdAnalyzer {
        let center =
            BBox::from_corners(Point::new(-1000.0, -1000.0), Point::new(1000.0, 1000.0));
        let ep = |name: &str, a: (f64, f64), b: (f64, f64)| OdEndpoint {
            name: name.into(),
            corridor: Corridor::new(
                Polyline::new(vec![Point::new(a.0, a.1), Point::new(b.0, b.1)]).unwrap(),
                120.0,
            ),
        };
        OdAnalyzer::new(
            vec![
                ep("T", (0.0, -2000.0), (0.0, -2450.0)),
                ep("S", (2000.0, 0.0), (2450.0, 0.0)),
                ep("L", (-2000.0, 1500.0), (-2450.0, 1800.0)),
            ],
            OdConfig::new(center),
        )
    }

    fn segment_from(path: Vec<(f64, f64)>) -> TripSegment {
        let points: Vec<RoutePoint> = path
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(1),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(x, y),
                timestamp: Timestamp::from_secs(i as i64 * 30),
                speed_kmh: 30.0,
                heading_deg: 0.0,
                fuel_ml: 0.0,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect();
        TripSegment {
            trip_id: TripId(1),
            taxi: TaxiId(1),
            start_time: Timestamp::from_secs(0),
            points,
        }
    }

    proptest! {
        /// Transition invariants for arbitrary trajectories: origin before
        /// destination, distinct roads, valid point indices, and funnel
        /// flag implication (post-filtered ⇒ within centre).
        #[test]
        fn transition_invariants(
            path in proptest::collection::vec((-2600f64..2600.0, -2600f64..2600.0), 2..40)
        ) {
            let a = analyzer();
            let seg = segment_from(path);
            for t in a.transitions(std::slice::from_ref(&seg)) {
                prop_assert!(t.origin_point < t.destination_point);
                prop_assert!(t.destination_point < seg.points.len());
                prop_assert!(t.from != t.to);
                if t.post_filtered {
                    prop_assert!(t.within_center);
                }
            }
            // roads_crossed is consistent with transitions existing.
            let crossed = a.roads_crossed(&seg);
            if !a.transitions(std::slice::from_ref(&seg)).is_empty() {
                prop_assert!(crossed >= 2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Polyline};
    use taxitrace_timebase::Timestamp;
    use taxitrace_traces::{PointTruth, RoutePoint, TripId};

    fn endpoint(name: &str, a: (f64, f64), b: (f64, f64)) -> OdEndpoint {
        OdEndpoint {
            name: name.into(),
            corridor: Corridor::new(
                Polyline::new(vec![Point::new(a.0, a.1), Point::new(b.0, b.1)]).unwrap(),
                120.0,
            ),
        }
    }

    fn analyzer() -> OdAnalyzer {
        // T: vertical road at x=0, y in [-2450, -2000];
        // S: horizontal road at y=0, x in [2000, 2450].
        let center = BBox::from_corners(Point::new(-1000.0, -1000.0), Point::new(1000.0, 1000.0));
        OdAnalyzer::new(
            vec![
                endpoint("T", (0.0, -2000.0), (0.0, -2450.0)),
                endpoint("S", (2000.0, 0.0), (2450.0, 0.0)),
                endpoint("L", (-2000.0, 1500.0), (-2450.0, 1800.0)),
            ],
            OdConfig::new(center),
        )
    }

    fn segment(taxi: u16, path: &[(f64, f64)]) -> TripSegment {
        let points: Vec<RoutePoint> = path
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(taxi),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(x, y),
                timestamp: Timestamp::from_secs(i as i64 * 30),
                speed_kmh: 30.0,
                heading_deg: 0.0,
                fuel_ml: 0.0,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect();
        TripSegment {
            trip_id: TripId(1),
            taxi: TaxiId(taxi),
            start_time: Timestamp::from_secs(0),
            points,
        }
    }

    /// A trip driving T → centre → S along the roads.
    fn t_to_s() -> TripSegment {
        segment(
            1,
            &[
                (0.0, -2400.0),
                (0.0, -2100.0), // along T road northbound (angle 0)
                (0.0, -1500.0),
                (0.0, -500.0),
                (0.0, 0.0), // city centre
                (500.0, 0.0),
                (1500.0, 0.0),
                (2100.0, 0.0), // along S road eastbound
                (2440.0, 0.0),
            ],
        )
    }

    #[test]
    fn extracts_ordered_transition() {
        let a = analyzer();
        let segs = vec![t_to_s()];
        let ts = a.transitions(&segs);
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert_eq!(t.from, "T");
        assert_eq!(t.to, "S");
        assert!(t.within_center);
        assert!(t.post_filtered);
        assert_eq!(t.pair_label(), "T-S");
    }

    #[test]
    fn reverse_trip_gives_reverse_pair() {
        let a = analyzer();
        let mut path: Vec<(f64, f64)> = t_to_s().points.iter().map(|p| (p.pos.x, p.pos.y)).collect();
        path.reverse();
        let ts = a.transitions(&[segment(1, &path)]);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].pair_label(), "S-T");
    }

    #[test]
    fn perpendicular_crossing_rejected_by_angle() {
        let a = analyzer();
        // Crosses the T road sideways (driving east at y=-2200), then
        // reaches S properly.
        let seg = segment(
            1,
            &[
                (-500.0, -2200.0),
                (0.0, -2200.0), // 90° across T
                (500.0, -2200.0),
                (2100.0, 0.0),
                (2440.0, 0.0),
            ],
        );
        let ts = a.transitions(&[seg]);
        // Only S is validly crossed → no transition.
        assert!(ts.is_empty());
    }

    #[test]
    fn bypass_outside_center_flagged() {
        let a = analyzer();
        // T → S around the outside (never enters the centre box).
        let seg = segment(
            1,
            &[
                (0.0, -2400.0),
                (0.0, -2100.0),
                (800.0, -1800.0),
                (1800.0, -1200.0),
                (1900.0, -150.0),
                (2100.0, 0.0), // approaches S roughly along the road
                (2440.0, 0.0),
            ],
        );
        let ts = a.transitions(&[seg]);
        assert_eq!(ts.len(), 1);
        assert!(!ts[0].within_center);
        assert!(!ts[0].post_filtered);
    }

    #[test]
    fn unstudied_pair_not_post_filtered() {
        let a = analyzer();
        // S → L is a transition but not one of the four studied pairs.
        let seg = segment(
            1,
            &[
                (2440.0, 0.0),
                (2100.0, 0.0),
                (500.0, 0.0),
                (0.0, 0.0),
                (-1000.0, 800.0),
                (-2100.0, 1570.0),
                (-2400.0, 1790.0),
            ],
        );
        let ts = a.transitions(&[seg]);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].pair_label(), "S-L");
        assert!(ts[0].within_center);
        assert!(!ts[0].post_filtered);
    }

    #[test]
    fn segment_far_from_everything_ignored() {
        let a = analyzer();
        let seg = segment(1, &[(9000.0, 9000.0), (9100.0, 9000.0), (9200.0, 9000.0)]);
        assert!(a.transitions(std::slice::from_ref(&seg)).is_empty());
        assert_eq!(a.filtered_cleaned_count(&[seg]), 0);
    }

    #[test]
    fn funnel_is_monotonic() {
        let a = analyzer();
        let segs = vec![
            t_to_s(),
            segment(1, &[(9000.0, 9000.0), (9100.0, 9000.0), (9200.0, 9100.0), (9300.0, 9100.0), (9400.0, 9200.0)]),
            segment(2, &[(0.0, -2400.0), (0.0, -2100.0), (0.0, -1500.0)]),
        ];
        let rows = a.funnel(&segs);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.filtered_cleaned <= r.segments_total);
            assert!(r.transitions_total <= r.filtered_cleaned.max(r.transitions_total));
            assert!(r.within_center <= r.transitions_total);
            assert!(r.post_filtered <= r.within_center);
        }
        let taxi1 = rows.iter().find(|r| r.taxi == 1).unwrap();
        assert_eq!(taxi1.segments_total, 2);
        assert_eq!(taxi1.transitions_total, 1);
        assert_eq!(taxi1.post_filtered, 1);
    }
}
