//! Origin–Destination segment selection (§IV-D).
//!
//! The paper selects three road segments at the key enter/exit points of
//! downtown Oulu — named **T**, **S** and **L** — artificially thickens them
//! ("thick geometry", Fig. 2) to catch routes deviating from the centre
//! line, and then narrows the cleaned trip segments down in stages:
//!
//! 1. keep segments that intersect the thick roads at an angle within a
//!    predefined range, on at least two *different* roads
//!    (Table 3, column "Filtered and cleaned");
//! 2. extract ordered origin → destination **transitions**
//!    (column "Transitions total");
//! 3. keep transitions passing through the central area
//!    (column "transitions within city centre");
//! 4. post-filter to the four studied pairs T-L, L-T, T-S, S-T whose start
//!    and end route points lie close to the respective O-D roads
//!    (column "Post-filtered").
//!
//! [`OdAnalyzer::funnel`] reproduces the whole Table 3 funnel;
//! [`OdAnalyzer::transitions`] yields the surviving transitions for
//! map-matching and attribute fusion.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod analyzer;
mod obs;

pub use analyzer::{FunnelRow, OdAnalyzer, OdConfig, OdEndpoint, Transition};
pub use obs::record_funnel_metrics;
