//! Projection of the Table 3 funnel into the observability registry.

use taxitrace_obs::Registry;

use crate::analyzer::FunnelRow;

/// Publishes the funnel totals (summed over taxis) as `od.*` counters.
/// Each counter is one column of the paper's Table 3, so the funnel's
/// drop-off is readable straight from a metrics dump.
pub fn record_funnel_metrics(rows: &[FunnelRow], registry: &Registry) {
    let mut segments_total = 0u64;
    let mut any_crossing = 0u64;
    let mut filtered_cleaned = 0u64;
    let mut transitions_total = 0u64;
    let mut within_center = 0u64;
    let mut post_filtered = 0u64;
    for row in rows {
        segments_total += row.segments_total as u64;
        any_crossing += row.any_crossing as u64;
        filtered_cleaned += row.filtered_cleaned as u64;
        transitions_total += row.transitions_total as u64;
        within_center += row.within_center as u64;
        post_filtered += row.post_filtered as u64;
    }
    registry.counter("od.taxis").add(rows.len() as u64);
    registry.counter("od.segments_total").add(segments_total);
    registry.counter("od.any_crossing").add(any_crossing);
    registry.counter("od.filtered_cleaned").add(filtered_cleaned);
    registry.counter("od.transitions_total").add(transitions_total);
    registry.counter("od.within_center").add(within_center);
    registry.counter("od.post_filtered").add(post_filtered);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_funnel_columns() {
        let rows = vec![
            FunnelRow {
                taxi: 1,
                segments_total: 100,
                any_crossing: 40,
                filtered_cleaned: 30,
                transitions_total: 10,
                within_center: 8,
                post_filtered: 6,
            },
            FunnelRow {
                taxi: 2,
                segments_total: 50,
                any_crossing: 20,
                filtered_cleaned: 15,
                transitions_total: 5,
                within_center: 4,
                post_filtered: 3,
            },
        ];
        let registry = Registry::new();
        record_funnel_metrics(&rows, &registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("od.taxis"), Some(2));
        assert_eq!(snap.counter("od.segments_total"), Some(150));
        assert_eq!(snap.counter("od.filtered_cleaned"), Some(45));
        assert_eq!(snap.counter("od.within_center"), Some(12));
        assert_eq!(snap.counter("od.post_filtered"), Some(9));
    }
}
