//! End-to-end pipeline benchmarks: fleet simulation and the full study
//! (simulate → store → clean → select → match → fuse) at reduced volume.

use criterion::{criterion_group, criterion_main, Criterion};
use taxitrace_bench::bench_city;
use taxitrace_core::{Study, StudyConfig};
use taxitrace_traces::{simulate_fleet, FleetConfig};
use taxitrace_weather::WeatherModel;

fn pipeline_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("city_generation", |b| b.iter(bench_city));

    group.bench_function("fleet_simulation_1pct", |b| {
        let city = bench_city();
        let weather = WeatherModel::new(5);
        let cfg = FleetConfig { scale: 0.01, ..FleetConfig::default() };
        b.iter(|| simulate_fleet(&city, &weather, &cfg).total_points())
    });

    // A/B of the sharded (taxi, day) simulation across worker counts. The
    // RNG streams are derived per shard, so the output is identical at any
    // thread count; only the wall clock should move. On a single-core host
    // the multi-worker arm measures oversubscription overhead, not speedup
    // — read it together with BENCH_pipeline.json's `simulate_matrix`.
    {
        let city = bench_city();
        let weather = WeatherModel::new(5);
        let cfg = FleetConfig { scale: 0.02, ..FleetConfig::default() };
        let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for workers in [1, machine.max(2)] {
            group.bench_function(&format!("fleet_simulation_2pct_threads_{workers}"), |b| {
                taxitrace_exec::set_max_workers(workers);
                b.iter(|| simulate_fleet(&city, &weather, &cfg).total_points())
            });
        }
        taxitrace_exec::set_max_workers(0);
    }

    group.bench_function("full_study_2pct", |b| {
        b.iter(|| {
            let out = Study::new(StudyConfig::scaled(5, 0.02)).run().expect("study runs");
            (out.segments.len(), out.transitions.len())
        })
    });

    group.finish();
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);
