//! End-to-end pipeline benchmarks: fleet simulation and the full study
//! (simulate → store → clean → select → match → fuse) at reduced volume.

use criterion::{criterion_group, criterion_main, Criterion};
use taxitrace_bench::bench_city;
use taxitrace_core::{Study, StudyConfig};
use taxitrace_traces::{simulate_fleet, FleetConfig};
use taxitrace_weather::WeatherModel;

fn pipeline_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("city_generation", |b| b.iter(bench_city));

    group.bench_function("fleet_simulation_1pct", |b| {
        let city = bench_city();
        let weather = WeatherModel::new(5);
        let cfg = FleetConfig { scale: 0.01, ..FleetConfig::default() };
        b.iter(|| simulate_fleet(&city, &weather, &cfg).total_points())
    });

    group.bench_function("full_study_2pct", |b| {
        b.iter(|| {
            let out = Study::new(StudyConfig::scaled(5, 0.02)).run().expect("study runs");
            (out.segments.len(), out.transitions.len())
        })
    });

    group.finish();
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);
