//! Analysis benchmarks: 200 m grid aggregation (Table 5 / Fig. 6), the
//! REML mixed model (Figs. 7–9), O-D funnel evaluation (Table 3) and
//! Table 4 computation.

use criterion::{criterion_group, criterion_main, Criterion};
use taxitrace_bench::bench_study;
use taxitrace_core::{mixed_model, Table4};
use taxitrace_od::OdAnalyzer;

fn analysis_benches(c: &mut Criterion) {
    let output = bench_study(33, 0.1);

    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);

    group.bench_function("grid_aggregation", |b| {
        b.iter(|| output.grid_stats(None).cells.len())
    });

    group.bench_function("table5", |b| {
        let grid = output.grid_stats(None);
        b.iter(|| grid.table5())
    });

    group.bench_function("table4", |b| b.iter(|| Table4::compute(&output)));

    group.bench_function("mixed_model_reml", |b| {
        b.iter(|| mixed_model(&output).expect("fits"))
    });

    group.bench_function("od_funnel", |b| {
        let analyzer = OdAnalyzer::from_city(&output.city);
        b.iter(|| analyzer.funnel(&output.segments))
    });

    group.finish();
}

criterion_group!(benches, analysis_benches);
criterion_main!(benches);
