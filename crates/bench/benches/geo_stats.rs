//! Substrate micro-benchmarks: geometry primitives and statistical
//! estimators that sit in the pipeline's inner loops.

use criterion::{criterion_group, criterion_main, Criterion};
use taxitrace_geo::{BBox, Corridor, Point, Polyline, RTree, RTreeEntry};
use taxitrace_stats::{ols_fit, qq_points, Matrix, RandomIntercept, Summary};

fn geo_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo");

    // A 50-vertex polyline (a long merged edge).
    let line = Polyline::new(
        (0..50)
            .map(|i| Point::new(i as f64 * 40.0, ((i * 7) % 13) as f64 * 15.0))
            .collect(),
    )
    .expect("valid polyline");

    group.bench_function("polyline_project", |b| {
        let q = Point::new(911.0, 53.0);
        b.iter(|| line.project(q))
    });

    group.bench_function("corridor_crossings", |b| {
        let corridor = Corridor::new(line.clone(), 60.0);
        let traj: Vec<Point> =
            (0..120).map(|i| Point::new(i as f64 * 17.0, -200.0 + i as f64 * 4.0)).collect();
        b.iter(|| corridor.crossings(&traj).len())
    });

    group.bench_function("rtree_query", |b| {
        let entries: Vec<RTreeEntry<usize>> = (0..2000)
            .map(|i| RTreeEntry {
                bbox: BBox::from_point(Point::new(
                    ((i * 131) % 4000) as f64 - 2000.0,
                    ((i * 37) % 4000) as f64 - 2000.0,
                ))
                .expand(30.0),
                item: i,
            })
            .collect();
        let tree = RTree::bulk_load(entries);
        b.iter(|| tree.within_radius(Point::new(120.0, -340.0), 100.0).len())
    });

    group.finish();
}

fn stats_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");

    let data: Vec<f64> = (0..10_000).map(|i| ((i * 2654435761u64 as usize) % 1000) as f64).collect();
    group.bench_function("summary_10k", |b| b.iter(|| Summary::of(&data)));
    group.bench_function("qq_points_10k", |b| b.iter(|| qq_points(&data).len()));

    // OLS with 3 predictors over 5 000 rows.
    let n = 5_000;
    let mut x = Matrix::zeros(n, 4);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let a = (i % 17) as f64;
        let b_ = (i % 29) as f64;
        let c_ = (i % 7) as f64;
        x[(i, 0)] = 1.0;
        x[(i, 1)] = a;
        x[(i, 2)] = b_;
        x[(i, 3)] = c_;
        y.push(2.0 + 0.5 * a - 0.2 * b_ + 1.1 * c_ + ((i * 31) % 11) as f64 * 0.01);
    }
    group.bench_function("ols_5k_x4", |b| b.iter(|| ols_fit(&y, &x).expect("fits")));

    // REML LMM: 5 000 observations over 120 groups.
    let groups: Vec<u64> = (0..n).map(|i| (i % 120) as u64).collect();
    let x1 = Matrix::from_rows(n, 1, vec![1.0; n]);
    group.sample_size(20);
    group.bench_function("lmm_reml_5k_120groups", |b| {
        b.iter(|| RandomIntercept::default().fit(&y, &x1, &groups).expect("fits"))
    });

    group.finish();
}

criterion_group!(benches, geo_benches, stats_benches);
criterion_main!(benches);
