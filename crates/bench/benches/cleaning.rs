//! Cleaning-stage benchmarks: §IV-B order repair and Table 2 segmentation
//! throughput on simulated sessions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use taxitrace_bench::{bench_city, bench_fleet};
use taxitrace_cleaning::{clean_session, repair_order, CleaningConfig};

fn cleaning_benches(c: &mut Criterion) {
    let city = bench_city();
    let fleet = bench_fleet(&city, 11, 0.02);
    // Pick a large session as the workload.
    let session = fleet
        .sessions
        .iter()
        .max_by_key(|s| s.points.len())
        .expect("fleet has sessions")
        .clone();
    let config = CleaningConfig::default();

    let mut group = c.benchmark_group("cleaning");
    group.throughput(criterion::Throughput::Elements(session.points.len() as u64));

    group.bench_function("order_repair", |b| {
        b.iter_batched(
            || session.points.clone(),
            |pts| repair_order(&pts),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("clean_session_full", |b| {
        b.iter(|| clean_session(&session, &config))
    });

    group.bench_function("clean_whole_fleet_sample", |b| {
        let sample: Vec<_> = fleet.sessions.iter().take(25).collect();
        b.iter(|| {
            sample
                .iter()
                .map(|s| clean_session(s, &config).segments.len())
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, cleaning_benches);
criterion_main!(benches);
