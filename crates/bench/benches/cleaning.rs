//! Cleaning-stage benchmarks: §IV-B order repair and Table 2 segmentation
//! throughput on simulated sessions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use taxitrace_bench::{bench_city, bench_fleet};
use taxitrace_cleaning::{
    clean_session, repair_order, segment_columns, segment_session_reference, CleaningConfig,
    SegmentationConfig,
};
use taxitrace_traces::TraceColumns;

fn cleaning_benches(c: &mut Criterion) {
    let city = bench_city();
    let fleet = bench_fleet(&city, 11, 0.02);
    // Pick a large session as the workload.
    let session = fleet
        .sessions
        .iter()
        .max_by_key(|s| s.points.len())
        .expect("fleet has sessions")
        .clone();
    let config = CleaningConfig::default();

    let mut group = c.benchmark_group("cleaning");
    group.throughput(criterion::Throughput::Elements(session.points.len() as u64));

    group.bench_function("order_repair", |b| {
        b.iter_batched(
            || session.points.clone(),
            |pts| repair_order(&pts),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("clean_session_full", |b| {
        b.iter(|| clean_session(&session, &config))
    });

    group.bench_function("clean_whole_fleet_sample", |b| {
        let sample: Vec<_> = fleet.sessions.iter().take(25).collect();
        b.iter(|| {
            sample
                .iter()
                .map(|s| clean_session(s, &config).segments.len())
                .sum::<usize>()
        })
    });

    group.finish();

    // A/B: Table 2 segmentation over the original array-of-structs point
    // slice versus the struct-of-arrays column buffer the pipeline now
    // builds. `soa_columns` measures the rule scan alone (columns already
    // gathered, as in the cleaning pipeline); `soa_gather_and_scan` charges
    // the gather too, the worst case for a caller that only segments once.
    let seg_cfg = SegmentationConfig::default();
    let ordered = repair_order(&session.points).0;
    let cols = TraceColumns::from_points(&ordered);
    let mut ab = c.benchmark_group("segmentation_ab");
    ab.throughput(criterion::Throughput::Elements(ordered.len() as u64));
    ab.bench_function("aos_reference", |b| {
        b.iter(|| segment_session_reference(&ordered, &seg_cfg))
    });
    ab.bench_function("soa_columns", |b| b.iter(|| segment_columns(&cols, &seg_cfg)));
    ab.bench_function("soa_gather_and_scan", |b| {
        b.iter(|| segment_columns(&TraceColumns::from_points(&ordered), &seg_cfg))
    });
    ab.finish();
}

criterion_group!(benches, cleaning_benches);
criterion_main!(benches);
