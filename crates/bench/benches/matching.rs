//! Map-matching benchmarks: the paper's incremental matcher versus the
//! nearest-element and HMM baselines, plus candidate-index construction.

use criterion::{criterion_group, criterion_main, Criterion};
use taxitrace_bench::{bench_city, bench_fleet};
use taxitrace_matching::{CandidateIndex, MatchConfig, MatchScratch};

fn matching_benches(c: &mut Criterion) {
    let city = bench_city();
    let fleet = bench_fleet(&city, 22, 0.02);
    let index = CandidateIndex::new(&city.graph, &city.elements);
    let config = MatchConfig::default();
    let session = fleet
        .sessions
        .iter()
        .max_by_key(|s| s.points.len())
        .expect("fleet has sessions");
    let points = session.points_in_true_order();

    let mut group = c.benchmark_group("matching");
    group.throughput(criterion::Throughput::Elements(points.len() as u64));

    group.bench_function("index_build", |b| {
        b.iter(|| CandidateIndex::new(&city.graph, &city.elements))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            taxitrace_matching::incremental::match_trace(&city.graph, &index, &points, &config)
        })
    });
    group.bench_function("incremental_no_lookahead", |b| {
        let greedy = MatchConfig { lookahead: 0, ..config };
        b.iter(|| {
            taxitrace_matching::incremental::match_trace(&city.graph, &index, &points, &greedy)
        })
    });
    group.bench_function("nearest", |b| {
        b.iter(|| taxitrace_matching::nearest::match_trace(&city.graph, &index, &points, &config))
    });
    group.bench_function("hmm_viterbi", |b| {
        b.iter(|| taxitrace_matching::hmm::match_trace(&city.graph, &index, &points, &config))
    });

    // Gap fill is exercised by sparse traces (dense ones rarely leave
    // adjacent edges): keep every 4th point so most transitions need a
    // routed fill, then compare the blind uncached reference against the
    // goal-directed search with a warm cross-trace cache.
    let sparse: Vec<_> = points.iter().step_by(4).cloned().collect();
    group.bench_function("sparse_gap_fill_uncached", |b| {
        b.iter(|| {
            taxitrace_matching::incremental::match_trace_reference(
                &city.graph,
                &index,
                &sparse,
                &config,
            )
        })
    });
    group.bench_function("sparse_gap_fill_cached", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            taxitrace_matching::incremental::match_trace_with(
                &mut scratch,
                &city.graph,
                &index,
                &sparse,
                &config,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, matching_benches);
criterion_main!(benches);
