//! Trip-store benchmarks: ingest, keyed access, time scans and spatial
//! queries (the PostGIS-role workload), plus the container codec A/B —
//! sequential v2 salvage scan versus v3 offset-index seek reads.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use taxitrace_bench::{bench_city, bench_fleet};
use taxitrace_geo::{BBox, Point};
use taxitrace_store::codec::{
    load_bytes, read_session_indexed, salvage_bytes, save_sessions_tagged,
    save_sessions_v2_tagged,
};
use taxitrace_store::{LoadOptions, Query, TripStore};
use taxitrace_timebase::{study_period_start, Duration};
use taxitrace_traces::TaxiId;

fn store_benches(c: &mut Criterion) {
    let city = bench_city();
    let fleet = bench_fleet(&city, 44, 0.03);
    let sessions = fleet.sessions;

    let mut store = TripStore::new();
    store.insert_all(sessions.clone()).expect("unique ids");
    let n_points: u64 = store.stats().points as u64;

    let mut group = c.benchmark_group("store");
    group.throughput(criterion::Throughput::Elements(n_points));

    group.bench_function("bulk_insert", |b| {
        b.iter_batched(
            || sessions.clone(),
            |s| {
                let mut st = TripStore::new();
                st.insert_all(s).expect("unique ids");
                st.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("taxi_scan", |b| {
        b.iter(|| store.of_taxi(TaxiId(1)).map(|s| s.points.len()).sum::<usize>())
    });

    group.bench_function("time_range_scan", |b| {
        let from = study_period_start() + Duration::from_days(60);
        let to = study_period_start() + Duration::from_days(240);
        b.iter(|| store.in_time_range(from, to).count())
    });

    group.bench_function("spatial_bbox_query", |b| {
        let bbox = BBox::from_corners(Point::new(-400.0, -400.0), Point::new(400.0, 400.0));
        b.iter(|| store.points_in_bbox(&bbox).len())
    });

    group.bench_function("composed_query", |b| {
        let q = Query::new().taxi(TaxiId(2)).min_points(20).touches(BBox::from_corners(
            Point::new(-1000.0, -1000.0),
            Point::new(1000.0, 1000.0),
        ));
        b.iter(|| store.query(&q).expect("valid query").count())
    });

    group.finish();

    // Container codec A/B: the same fleet serialized in the pre-index v2
    // layout (sequential CRC scan to load) and the v3 layout (offset index,
    // seek + zero-copy payload decode). `single_record` compares fetching
    // the *last* record — the scan's worst case, the index's constant case.
    let dir = std::env::temp_dir().join(format!("taxitrace-bench-codec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v2_path = dir.join("fleet.v2.ttrs");
    let v3_path = dir.join("fleet.v3.ttrs");
    save_sessions_v2_tagged(&v2_path, &sessions, 7).expect("write v2");
    save_sessions_tagged(&v3_path, &sessions, 7).expect("write v3");
    let v2_raw = Bytes::from(std::fs::read(&v2_path).expect("read v2"));
    let v3_raw = Bytes::from(std::fs::read(&v3_path).expect("read v3"));
    let last = sessions.len() - 1;

    let mut codec = c.benchmark_group("codec_ab");
    codec.throughput(criterion::Throughput::Bytes(v3_raw.len() as u64));
    codec.bench_function("full_load_v2_scan", |b| {
        b.iter(|| salvage_bytes(&v2_raw).sessions.len())
    });
    codec.bench_function("full_load_v3_indexed", |b| {
        b.iter(|| {
            let out = load_bytes(&v3_raw, &LoadOptions::strict()).expect("clean image");
            assert!(out.indexed, "v3 image must take the indexed path");
            out.sessions.len()
        })
    });
    codec.bench_function("single_record_v2_scan", |b| {
        b.iter(|| salvage_bytes(&v2_raw).sessions[last].points.len())
    });
    codec.bench_function("single_record_v3_seek", |b| {
        b.iter(|| {
            read_session_indexed(&v3_raw, last)
                .expect("clean image")
                .expect("in range")
                .points
                .len()
        })
    });
    codec.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, store_benches);
criterion_main!(benches);
