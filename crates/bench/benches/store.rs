//! Trip-store benchmarks: ingest, keyed access, time scans and spatial
//! queries (the PostGIS-role workload).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use taxitrace_bench::{bench_city, bench_fleet};
use taxitrace_geo::{BBox, Point};
use taxitrace_store::{Query, TripStore};
use taxitrace_timebase::{study_period_start, Duration};
use taxitrace_traces::TaxiId;

fn store_benches(c: &mut Criterion) {
    let city = bench_city();
    let fleet = bench_fleet(&city, 44, 0.03);
    let sessions = fleet.sessions;

    let mut store = TripStore::new();
    store.insert_all(sessions.clone()).expect("unique ids");
    let n_points: u64 = store.stats().points as u64;

    let mut group = c.benchmark_group("store");
    group.throughput(criterion::Throughput::Elements(n_points));

    group.bench_function("bulk_insert", |b| {
        b.iter_batched(
            || sessions.clone(),
            |s| {
                let mut st = TripStore::new();
                st.insert_all(s).expect("unique ids");
                st.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("taxi_scan", |b| {
        b.iter(|| store.of_taxi(TaxiId(1)).map(|s| s.points.len()).sum::<usize>())
    });

    group.bench_function("time_range_scan", |b| {
        let from = study_period_start() + Duration::from_days(60);
        let to = study_period_start() + Duration::from_days(240);
        b.iter(|| store.in_time_range(from, to).count())
    });

    group.bench_function("spatial_bbox_query", |b| {
        let bbox = BBox::from_corners(Point::new(-400.0, -400.0), Point::new(400.0, 400.0));
        b.iter(|| store.points_in_bbox(&bbox).len())
    });

    group.bench_function("composed_query", |b| {
        let q = Query::new().taxi(TaxiId(2)).min_points(20).touches(BBox::from_corners(
            Point::new(-1000.0, -1000.0),
            Point::new(1000.0, 1000.0),
        ));
        b.iter(|| store.query(&q).len())
    });

    group.finish();
}

criterion_group!(benches, store_benches);
criterion_main!(benches);
