//! Road-network benchmarks: graph construction from traffic elements
//! (§IV-A) and shortest paths (the pgRouting role) — the blind Dijkstra
//! reference against the goal-directed A* used by the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use taxitrace_bench::bench_city;
use taxitrace_roadnet::{dijkstra, CostModel, NodeId, RoadGraph, SearchState};

fn roadnet_benches(c: &mut Criterion) {
    let city = bench_city();
    let projection = *city.graph.projection();

    let mut group = c.benchmark_group("roadnet");

    group.bench_function("graph_build", |b| {
        b.iter(|| RoadGraph::build(&city.elements, projection).expect("valid city"))
    });

    let from = city.od_roads[0].outer_node;
    let to = city.od_roads[1].outer_node;
    group.bench_function("dijkstra_od_to_od", |b| {
        b.iter(|| dijkstra::shortest_path(&city.graph, from, to, CostModel::TravelTime))
    });

    group.bench_function("astar_od_to_od", |b| {
        let mut state = SearchState::new();
        b.iter(|| dijkstra::astar_with(&mut state, &city.graph, from, to, CostModel::TravelTime))
    });

    // Not a timing: compare how much of the graph each search touches on
    // the same query (the quantity goal-direction is supposed to shrink).
    {
        let mut goal_directed = SearchState::new();
        dijkstra::astar_with(&mut goal_directed, &city.graph, from, to, CostModel::TravelTime);
        let mut blind = SearchState::new();
        dijkstra::astar_weighted_with(
            &mut blind,
            &city.graph,
            from,
            to,
            |e| CostModel::TravelTime.cost(e),
            0.0,
        );
        eprintln!(
            "roadnet/expansions od_to_od: astar {} vs dijkstra-order {} ({:.0}% of blind)",
            goal_directed.expanded(),
            blind.expanded(),
            100.0 * goal_directed.expanded() as f64 / blind.expanded().max(1) as f64,
        );
        assert!(
            goal_directed.expanded() < blind.expanded(),
            "A* must expand fewer nodes than the blind search"
        );
    }

    group.bench_function("dijkstra_all_pairs_sample", |b| {
        let n = city.graph.num_nodes() as u32;
        b.iter(|| {
            let mut total = 0.0;
            for k in (0..n).step_by(37) {
                if let Some(p) =
                    dijkstra::shortest_path(&city.graph, NodeId(k % n), to, CostModel::Distance)
                {
                    total += p.length_m;
                }
            }
            total
        })
    });

    group.bench_function("astar_all_pairs_sample", |b| {
        let n = city.graph.num_nodes() as u32;
        let mut state = SearchState::new();
        b.iter(|| {
            let mut total = 0.0;
            for k in (0..n).step_by(37) {
                if let Some(p) = dijkstra::astar_with(
                    &mut state,
                    &city.graph,
                    NodeId(k % n),
                    to,
                    CostModel::Distance,
                ) {
                    total += p.length_m;
                }
            }
            total
        })
    });

    group.bench_function("junction_pairs_table1", |b| {
        b.iter(|| city.graph.junction_pairs().len())
    });

    group.finish();
}

criterion_group!(benches, roadnet_benches);
criterion_main!(benches);
