//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p taxitrace-bench --bin repro -- [--seed N] [--scale F] <experiment>
//! ```
//!
//! Experiments: `fig2 table1 table2 table3 table4 table5 fig3 fig4 fig5
//! fig6 fig7 fig8 fig9 fig10 validation ablation-thick ablation-lookahead
//! ablation-rules ablation-grid all`.
//!
//! `--bench-json <path>` additionally writes per-stage wall-clock timings,
//! the gap-fill cache hit rate, the worker-thread count, a
//! `simulate_matrix` (fleet simulation walls at relative scale 1/10/100 ×
//! threads 1/N, each row FNV-fingerprinted so thread-count invariance is
//! checkable) and a `study_fingerprint` of the full pipeline output as
//! JSON (see `BENCH_pipeline.json` for a committed example). It changes
//! nothing on stdout/stderr, so baseline comparisons stay byte-exact.
//!
//! `--threads N` pins the worker pool (oversubscription allowed, so
//! multi-worker interleavings are exercisable on any host); the default
//! sizes workers to the machine.
//!
//! `--metrics <table|json|prometheus>` renders the study's full
//! observability snapshot — stage/sub-stage spans, per-stage counters,
//! executor and gap-fill-cache stats — to stderr, or to a file with
//! `--metrics-out <path>` (which implies `--metrics json` unless a format
//! is given). Neither flag touches stdout, so experiment output stays
//! byte-identical to the committed baseline.
//!
//! `--chaos <plan>` loads a fault plan (`key value` lines, see
//! `taxitrace_traces::FaultPlan::parse`) and runs the study under it:
//! injected trace faults are quarantined, injected task panics are
//! isolated, and stage error budgets decide whether the degraded run
//! still counts. `--checkpoint-dir <dir>` checkpoints each completed
//! stage there and resumes interrupted runs (chaos kills, failed
//! checkpoint writes) from the last completed stage. A quarantine
//! summary goes to stderr; stdout stays the byte-exact experiment
//! surface.
//!
//! `--store <file>` replays the study from a persisted trip store instead
//! of simulating: the file is read through the salvage path, damaged
//! records are quarantined with typed reasons and `store.*` corruption
//! metrics appear in `--metrics` output. Three maintenance subcommands
//! manage such files: `store-save <file>` writes one, `store-corrupt
//! --chaos <plan> <file>` applies a plan's seeded disk faults to it, and
//! `fsck [--repair] <path>` integrity-scans (and repairs) stores and
//! checkpoints.
//!
//! `repro stream` runs the same study as a live feed — points in arrival
//! order through a bounded queue, trips closed by the watermark, cleaned
//! incrementally — and prints the pipeline fingerprint it converges to,
//! which equals the batch fingerprint (see `DESIGN.md` §15). `--chaos`
//! adds stream faults (kill, late flood, burst, stall, garble) and
//! `--checkpoint-dir` makes killed runs resume from the stream cursor.
//!
//! Absolute values come from the calibrated simulator, not the authors'
//! taxis; the point of each experiment is the *shape* comparison printed
//! alongside the paper's published numbers (see `EXPERIMENTS.md`).

use std::collections::HashMap;
use std::sync::OnceLock;

use taxitrace_cleaning::{clean_session, validate_segments, CleaningConfig, SegmentationConfig};
use taxitrace_core::{
    directional_speeds, mixed_model, render_table1, render_table3, render_table4,
    render_table5, seasonal_deltas, seasonal_speeds, temperature_analysis, Study, StudyConfig,
    StudyOutput, Table4,
};
use taxitrace_geo::{CellId, Corridor, Grid, Point};
use taxitrace_matching::{evaluate, CandidateIndex, MatchAccuracy, MatchConfig, MatchScratch};
use taxitrace_obs::MetricsFormat;
use taxitrace_od::{OdAnalyzer, OdConfig, OdEndpoint};
use taxitrace_timebase::Season;
use taxitrace_traces::TaxiId;

struct Args {
    seed: u64,
    scale: f64,
    experiment: String,
    /// Path operand of the maintenance subcommands (`fsck`, `store-save`,
    /// `store-corrupt`, `export`, `ingest`, `mutate`).
    operand: Option<String>,
    /// Second path operand (`mutate <in> <out>`).
    operand2: Option<String>,
    /// Run the study from an external trace CSV instead of simulating.
    from_csv: Option<String>,
    /// External OSMX map to ingest the city from (with `--from-csv` or
    /// `ingest`); without it the synthetic city of the config is used.
    map: Option<String>,
    bench_json: Option<String>,
    metrics: Option<MetricsFormat>,
    metrics_out: Option<String>,
    chaos: Option<String>,
    checkpoint_dir: Option<String>,
    /// Replay the study from this trip-store file instead of simulating.
    store: Option<String>,
    /// `fsck --repair`: rewrite/remove damaged files.
    repair: bool,
    /// Worker-pool override (`--threads N`); `None` sizes to the machine.
    threads: Option<usize>,
    /// `serve`: TCP port to bind (0 = ephemeral, the default).
    port: u16,
    /// `serve-bench`: total requests across all clients.
    requests: usize,
    /// `serve --shutdown-file PATH`: poll for this file and drain when
    /// it appears, instead of running until killed.
    shutdown_file: Option<String>,
}

impl Args {
    fn operand(&self, what: &str) -> &str {
        self.operand.as_deref().unwrap_or_else(|| die(what))
    }
}

fn parse_args() -> Args {
    let mut seed = 2012u64;
    let mut scale = 0.3f64;
    let mut experiment = None;
    let mut operand = None;
    let mut operand2 = None;
    let mut from_csv = None;
    let mut map = None;
    let mut bench_json = None;
    let mut metrics = None;
    let mut metrics_out = None;
    let mut chaos = None;
    let mut checkpoint_dir = None;
    let mut store = None;
    let mut repair = false;
    let mut threads = None;
    let mut port = 0u16;
    let mut requests = 600usize;
    let mut shutdown_file = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float"));
            }
            "--bench-json" => {
                bench_json =
                    Some(it.next().unwrap_or_else(|| die("--bench-json needs a path")));
            }
            "--metrics" => {
                let fmt = it.next().unwrap_or_else(|| die("--metrics needs a format"));
                metrics = Some(MetricsFormat::parse(&fmt).unwrap_or_else(|| {
                    die("--metrics wants table, json or prometheus")
                }));
            }
            "--metrics-out" => {
                metrics_out =
                    Some(it.next().unwrap_or_else(|| die("--metrics-out needs a path")));
            }
            "--chaos" => {
                chaos = Some(it.next().unwrap_or_else(|| die("--chaos needs a plan path")));
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(
                    it.next().unwrap_or_else(|| die("--checkpoint-dir needs a directory")),
                );
            }
            "--store" => {
                store = Some(it.next().unwrap_or_else(|| die("--store needs a path")));
            }
            "--from-csv" => {
                from_csv =
                    Some(it.next().unwrap_or_else(|| die("--from-csv needs a path")));
            }
            "--map" => {
                map = Some(it.next().unwrap_or_else(|| die("--map needs a path")));
            }
            "--repair" => repair = true,
            "--port" => {
                port = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--port needs a port number"));
            }
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--requests needs a positive integer"));
            }
            "--shutdown-file" => {
                shutdown_file =
                    Some(it.next().unwrap_or_else(|| die("--shutdown-file needs a path")));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--threads needs a positive integer")),
                );
            }
            "--help" | "-h" => die(
                "usage: repro [--seed N] [--scale F] [--threads N] [--bench-json PATH] \
                 [--metrics FMT] [--metrics-out PATH] [--chaos PLAN] \
                 [--checkpoint-dir DIR] [--store FILE] <experiment>\n\
                 \n\
                 maintenance subcommands:\n\
                 \x20 repro store-save <file>              simulate and write a v3 trip store\n\
                 \x20 repro store-corrupt --chaos P <file> apply a plan's disk faults to a store\n\
                 \x20 repro fsck [--repair] <path>         integrity-scan store/checkpoint files\n\
                 \n\
                 serving subcommands:\n\
                 \x20 repro serve [--port P] [--threads N] [--shutdown-file PATH]\n\
                 \x20                                        run the HTTP query service\n\
                 \x20 repro serve-bench [--requests N]       closed-loop load + contention bench\n\
                 \n\
                 streaming subcommand:\n\
                 \x20 repro stream [--chaos PLAN] [--checkpoint-dir DIR]\n\
                 \x20                                        run the study as a live stream\n\
                 \n\
                 ingestion subcommands (untrusted external formats):\n\
                 \x20 repro export <dir>                   simulate, write traces.csv + map.osmx\n\
                 \x20 repro ingest <traces.csv> [--map M]  run the study from external files\n\
                 \x20 repro mutate <in> <out> [--seed N]   apply the seeded fuzz mutator to a file\n\
                 \x20 repro <exp> --from-csv F [--map M]   run any experiment over ingested input\n\
                 \n\
                 exit codes: 0 success (possibly with quarantined records),\n\
                 \x20          2 I/O, config or usage error, 3 error budget exceeded",
            ),
            other => {
                if experiment.is_none() {
                    experiment = Some(other.to_string());
                } else if operand.is_none() {
                    operand = Some(other.to_string());
                } else if operand2.is_none() {
                    operand2 = Some(other.to_string());
                } else {
                    die(&format!("unexpected argument '{other}'"));
                }
            }
        }
    }
    Args {
        seed,
        scale,
        experiment: experiment.unwrap_or_else(|| String::from("all")),
        operand,
        operand2,
        from_csv,
        map,
        bench_json,
        metrics,
        metrics_out,
        chaos,
        checkpoint_dir,
        store,
        repair,
        threads,
        port,
        requests,
        shutdown_file,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// Exit with the code class of a study failure: 3 when a stage blew its
/// error budget (the input was readable but too degraded to report
/// results from), 2 for everything else (I/O, config, pipeline errors).
/// Success with quarantined-but-within-budget records stays exit 0.
fn die_study(e: taxitrace_core::Error) -> ! {
    eprintln!("study failed: {e}");
    let code = match e {
        taxitrace_core::Error::BudgetExceeded { .. } => 3,
        _ => 2,
    };
    std::process::exit(code)
}

static OUTPUT: OnceLock<StudyOutput> = OnceLock::new();
/// Wall-clock of the lazily-run study, so `--bench-json` can report the
/// analysis time (total minus study) without reordering any output.
static STUDY_WALL_S: OnceLock<f64> = OnceLock::new();

/// The study configuration for this invocation: the baseline scaled
/// config, plus the chaos plan when `--chaos` names one.
fn study_config(args: &Args) -> StudyConfig {
    let mut config = StudyConfig::scaled(args.seed, args.scale);
    if let Some(path) = &args.chaos {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read chaos plan {path}: {e}")));
        let plan = taxitrace_core::FaultPlan::parse(&text)
            .unwrap_or_else(|e| die(&format!("bad chaos plan {path}: {e}")));
        config.chaos = Some(plan);
    }
    config.validate().unwrap_or_else(|e| die(&format!("bad study config: {e}")));
    config
}

/// Runs the study once. Without `--checkpoint-dir` a failure is final;
/// with it, an interrupted run (a chaos kill, a failed checkpoint write)
/// is resumed from the last completed stage, a bounded number of times.
fn run_study(args: &Args) -> StudyOutput {
    let study = Study::new(study_config(args));
    if let Some(csv) = &args.from_csv {
        if args.store.is_some() || args.checkpoint_dir.is_some() {
            die("--from-csv cannot be combined with --store or --checkpoint-dir");
        }
        return study
            .run_from_external(
                std::path::Path::new(csv),
                args.map.as_deref().map(std::path::Path::new),
            )
            .unwrap_or_else(|e| die_study(e));
    }
    if let Some(store) = &args.store {
        if args.checkpoint_dir.is_some() {
            die("--store and --checkpoint-dir cannot be combined");
        }
        return study
            .run_from_store(std::path::Path::new(store))
            .unwrap_or_else(|e| die_study(e));
    }
    let Some(dir) = &args.checkpoint_dir else {
        return study.run().unwrap_or_else(|e| die_study(e));
    };
    let dir = std::path::Path::new(dir);
    let mut attempt = 0u32;
    loop {
        let result =
            if attempt == 0 { study.run_with_checkpoints(dir) } else { study.resume(dir) };
        match result {
            Ok(out) => return out,
            Err(e) if attempt < 4 => {
                attempt += 1;
                eprintln!(
                    "[repro] study interrupted ({e}); resuming from {} (attempt {attempt})",
                    dir.display()
                );
            }
            Err(e) => {
                eprintln!("study failed after {attempt} resume(s)");
                die_study(e)
            }
        }
    }
}

fn output(args: &Args) -> &'static StudyOutput {
    OUTPUT.get_or_init(|| {
        eprintln!(
            "[repro] running study: seed {}, scale {} (full paper year = 1.0) ...",
            args.seed, args.scale
        );
        let start = std::time::Instant::now();
        let out = run_study(args);
        let _ = STUDY_WALL_S.set(start.elapsed().as_secs_f64());
        eprintln!(
            "[repro] {} sessions, {} segments, {} transitions, {} transition points",
            out.cleaning.sessions,
            out.segments.len(),
            out.transitions.len(),
            out.total_transition_points()
        );
        if !out.quarantine.is_empty() {
            eprintln!(
                "[repro] quarantined {} record(s) by reason: {:?}",
                out.quarantine.len(),
                out.quarantine.by_reason()
            );
        }
        eprintln!();
        out
    })
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        taxitrace_exec::set_max_workers(n);
    }
    match args.experiment.as_str() {
        "store-save" => return cmd_store_save(&args),
        "store-corrupt" => return cmd_store_corrupt(&args),
        "fsck" => return cmd_fsck(&args),
        "export" => return cmd_export(&args),
        "ingest" => return cmd_ingest(&args),
        "mutate" => return cmd_mutate(&args),
        "serve" => return cmd_serve(&args),
        "serve-bench" => return cmd_serve_bench(&args),
        "stream" => return cmd_stream(&args),
        _ => {}
    }
    let all: Vec<&str> = vec![
        "fig2", "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6",
        "fig7", "fig8", "fig9", "fig10", "validation",
    ];
    let start = std::time::Instant::now();
    match args.experiment.as_str() {
        "all" => {
            for e in all {
                run(e, &args);
            }
        }
        e => run(e, &args),
    }
    if let Some(path) = &args.bench_json {
        let total_s = start.elapsed().as_secs_f64();
        let analysis_s = total_s - STUDY_WALL_S.get().copied().unwrap_or(0.0);
        write_bench_json(path, &args, output(&args), analysis_s.max(0.0));
    }
    if args.metrics.is_some() || args.metrics_out.is_some() {
        // `--metrics-out` without an explicit format means machine-readable.
        let fmt = args.metrics.unwrap_or(MetricsFormat::Json);
        let rendered = taxitrace_obs::render(&output(&args).metrics, fmt);
        match &args.metrics_out {
            Some(path) => std::fs::write(path, rendered)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}"))),
            None => eprint!("{rendered}"),
        }
    }
}

/// FNV-1a over little-endian words: the cheap deterministic fingerprint
/// used to assert byte-identity of simulation/pipeline output across
/// thread counts (not a cryptographic hash).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a_bytes(h, &v.to_le_bytes())
}

/// Fingerprint of a simulated fleet: every session's identity plus the
/// exact bits of every point. Two runs agree iff their traces are
/// bit-identical.
fn fleet_fingerprint(sessions: &[taxitrace_traces::RawTrip]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in sessions {
        h = fnv1a_u64(h, s.id.0);
        h = fnv1a_u64(h, u64::from(s.taxi.0));
        h = fnv1a_u64(h, s.points.len() as u64);
        for p in &s.points {
            h = fnv1a_u64(h, p.timestamp.secs() as u64);
            h = fnv1a_u64(h, p.pos.x.to_bits());
            h = fnv1a_u64(h, p.pos.y.to_bits());
            h = fnv1a_u64(h, p.speed_kmh.to_bits());
        }
    }
    h
}

/// Fingerprint of the full pipeline output (cleaning totals, funnel,
/// fused transitions down to point-speed bits). Equal fingerprints across
/// `--threads` settings certify the study is thread-count invariant.
fn study_fingerprint(out: &StudyOutput) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a_u64(h, out.cleaning.sessions as u64);
    h = fnv1a_u64(h, out.cleaning.segments_kept as u64);
    h = fnv1a_u64(h, out.segments.len() as u64);
    for row in out.funnel() {
        for v in [
            u64::from(row.taxi),
            row.segments_total as u64,
            row.any_crossing as u64,
            row.filtered_cleaned as u64,
            row.transitions_total as u64,
            row.within_center as u64,
            row.post_filtered as u64,
        ] {
            h = fnv1a_u64(h, v);
        }
    }
    for t in &out.transitions {
        h = fnv1a_bytes(h, t.pair.as_bytes());
        h = fnv1a_u64(h, t.points.len() as u64);
        h = fnv1a_u64(h, t.dist_km.to_bits());
        h = fnv1a_u64(h, t.time_h.to_bits());
        for p in &t.points {
            h = fnv1a_u64(h, p.speed_kmh.to_bits());
        }
    }
    h
}

/// The simulate scale × threads matrix: fleet simulation only (the
/// sharded stage), at relative scales 1/10/100 of 1% of the study's
/// volume — so the scale-100 row equals the study's own simulate load —
/// each at 1 worker and at the requested worker count. Rows carry FNV
/// fingerprints: within a scale they must agree across thread counts.
fn simulate_matrix_json(args: &Args, out: &StudyOutput) -> String {
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let many = args.threads.unwrap_or(machine).max(1);
    let thread_counts: Vec<usize> = if many == 1 { vec![1] } else { vec![1, many] };
    let base = out.config.fleet.scale / 100.0;
    let mut rows = Vec::new();
    for rel in [1u32, 10, 100] {
        for &threads in &thread_counts {
            taxitrace_exec::set_max_workers(threads);
            let mut fleet_cfg = out.config.fleet.clone();
            fleet_cfg.scale = base * f64::from(rel);
            let start = std::time::Instant::now();
            let fleet = taxitrace_traces::simulate_fleet(&out.city, &out.weather, &fleet_cfg);
            let wall_s = start.elapsed().as_secs_f64();
            rows.push(format!(
                "    {{ \"scale\": {}, \"threads\": {}, \"wall_s\": {:.3}, \"shard_units\": {}, \"sessions\": {}, \"fingerprint\": \"{:#018x}\" }}",
                rel,
                threads,
                wall_s,
                fleet.shard_count,
                fleet.sessions.len(),
                fleet_fingerprint(&fleet.sessions),
            ));
        }
    }
    // Restore the pool the rest of the process runs under.
    taxitrace_exec::set_max_workers(args.threads.unwrap_or(0));
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Hand-rolled JSON (no serializer dependency): per-stage pipeline
/// wall-clock, gap-fill cache efficiency and parallelism of this run,
/// the simulate scale × threads matrix, plus an A/B of the matcher with
/// fresh versus reused scratch on the exact transition slices the
/// pipeline matched. `match_routing_ab` deliberately reports raw times
/// and no speedup headline: the per-point A* inside incremental matching
/// is a small share of its wall (see EXPERIMENTS.md), so a ratio there
/// reads as a routing win when it mostly measures candidate scoring.
fn write_bench_json(path: &str, args: &Args, out: &StudyOutput, analysis_s: f64) {
    let t = &out.timings;
    let (hits, misses) = out.cache_stats;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let threads = taxitrace_exec::worker_count(out.transitions.len().max(2));

    // Rebuild the post-filtered transition slices (deterministic given the
    // segments) and time the matching step both ways.
    let analyzer = OdAnalyzer::from_city(&out.city);
    let raw = analyzer.transitions(&out.segments);
    let slices: Vec<Vec<taxitrace_traces::RoutePoint>> = raw
        .iter()
        .filter(|t| t.post_filtered)
        .map(|t| {
            let seg = &out.segments[t.segment_index];
            let dest = (t.destination_point + 1).min(seg.points.len() - 1);
            seg.points[t.origin_point..=dest].to_vec()
        })
        .collect();
    let index = CandidateIndex::new(&out.city.graph, &out.city.elements);
    let mc = &out.config.matching;
    // Best of several repetitions per arm, interleaved, to keep scheduler
    // noise out of a comparison whose single-run time is tens of ms.
    let mut match_fresh_s = f64::INFINITY;
    let mut match_scratch_s = f64::INFINITY;
    let mut fill_blind_s = f64::INFINITY;
    let mut fill_cached_s = f64::INFINITY;
    let matched: Vec<_> = slices
        .iter()
        .map(|pts| {
            taxitrace_matching::incremental::match_trace(&out.city.graph, &index, pts, mc)
        })
        .collect();
    for _ in 0..5 {
        // Routing core in isolation: the gap-fill element paths of all
        // matched transitions, blind/uncached versus goal-directed/cached.
        let start = std::time::Instant::now();
        for m in &matched {
            let _ = taxitrace_matching::element_path_blind(&out.city.graph, &m.points, true);
        }
        fill_blind_s = fill_blind_s.min(start.elapsed().as_secs_f64());
        let mut scratch = MatchScratch::new();
        let start = std::time::Instant::now();
        for m in &matched {
            let _ = taxitrace_matching::element_path_with(
                &mut scratch,
                &out.city.graph,
                &m.points,
                true,
            );
        }
        fill_cached_s = fill_cached_s.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        let _ = taxitrace_exec::par_map(&slices, |pts| {
            taxitrace_matching::incremental::match_trace_reference(
                &out.city.graph,
                &index,
                pts,
                mc,
            )
        });
        match_fresh_s = match_fresh_s.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        let _ = taxitrace_exec::par_map_init(&slices, MatchScratch::new, |scratch, pts| {
            taxitrace_matching::incremental::match_trace_with(
                scratch,
                &out.city.graph,
                &index,
                pts,
                mc,
            )
        });
        match_scratch_s = match_scratch_s.min(start.elapsed().as_secs_f64());
    }
    let matrix = simulate_matrix_json(args, out);
    let json = format!(
        "{{\n  \"seed\": {},\n  \"scale\": {},\n  \"experiment\": \"{}\",\n  \"threads\": {},\n  \"study_fingerprint\": \"{:#018x}\",\n  \"stages_s\": {{\n    \"simulate\": {:.3},\n    \"clean\": {:.3},\n    \"od\": {:.3},\n    \"match_fuse\": {:.3},\n    \"analysis\": {:.3}\n  }},\n  \"gap_fill_cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \"hit_rate\": {:.4}\n  }},\n  \"match_routing_ab\": {{\n    \"traces\": {},\n    \"blind_uncached_s\": {:.4},\n    \"goal_directed_cached_s\": {:.4}\n  }},\n  \"gap_fill_ab\": {{\n    \"blind_dijkstra_s\": {:.4},\n    \"goal_directed_cached_s\": {:.4},\n    \"speedup\": {:.2}\n  }},\n  \"simulate_matrix\": {}\n}}\n",
        args.seed,
        args.scale,
        args.experiment,
        threads,
        study_fingerprint(out),
        t.simulate_s,
        t.clean_s,
        t.od_s,
        t.match_fuse_s,
        analysis_s,
        hits,
        misses,
        hit_rate,
        slices.len(),
        match_fresh_s,
        match_scratch_s,
        fill_blind_s,
        fill_cached_s,
        fill_blind_s / fill_cached_s.max(1e-9),
        matrix,
    );
    std::fs::write(path, json)
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

// --------------------------------------------- storage maintenance tools

/// `repro store-save <file>`: simulate stage 1 under the current
/// seed/scale/chaos flags and persist the sessions as a v2 trip store,
/// fingerprinted so `--store` replays refuse a mismatched config.
fn cmd_store_save(args: &Args) {
    let path = args.operand("store-save needs a target path").to_string();
    eprintln!(
        "[repro] simulating store: seed {}, scale {} -> {path}",
        args.seed, args.scale
    );
    let study = Study::new(study_config(args));
    let sim = study.simulate().unwrap_or_else(|e| die(&format!("simulate failed: {e}")));
    sim.save_store(std::path::Path::new(&path))
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    println!("wrote {} session(s) to {path}", sim.store.sessions().len());
}

/// `repro export <dir>`: simulate the study's inputs under the current
/// seed/scale flags and write them in the two external exchange formats
/// — `traces.csv` (the GTFS-like trace schema) and `map.osmx` (the
/// compact map exchange format). Floats are written in shortest
/// round-trip form, so `repro ingest` on the exported files reproduces
/// the batch study bit-for-bit.
fn cmd_export(args: &Args) {
    let dir = args.operand("export needs a target directory").to_string();
    let dir = std::path::Path::new(&dir);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    eprintln!(
        "[repro] exporting external formats: seed {}, scale {} -> {}",
        args.seed,
        args.scale,
        dir.display()
    );
    let study = Study::new(study_config(args));
    let sim = study.simulate().unwrap_or_else(|e| die_study(e));
    let traces_path = dir.join("traces.csv");
    let map_path = dir.join("map.osmx");
    let csv = taxitrace_ingest::export_trace_csv(sim.store.sessions());
    std::fs::write(&traces_path, csv)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", traces_path.display())));
    let osmx = taxitrace_ingest::export_osmx(&sim.city);
    std::fs::write(&map_path, osmx)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", map_path.display())));
    let points: usize = sim.store.sessions().iter().map(|s| s.points.len()).sum();
    println!(
        "wrote {} session(s), {} point(s) to {} and the city map to {}",
        sim.store.sessions().len(),
        points,
        traces_path.display(),
        map_path.display()
    );
}

/// `repro ingest <traces.csv> [--map <map.osmx>]`: run the full study
/// over externally supplied, untrusted input files. Malformed records
/// are quarantined at the `ingest` stage (within the configured error
/// budget — beyond it the run exits 3); the final `study fingerprint`
/// line matches the batch study's when the input is an unmutated
/// `repro export`.
fn cmd_ingest(args: &Args) {
    let trace = args.operand("ingest needs a trace CSV path").to_string();
    eprintln!(
        "[repro] ingesting external input: seed {}, scale {}, traces {trace}{}",
        args.seed,
        args.scale,
        args.map.as_deref().map(|m| format!(", map {m}")).unwrap_or_default()
    );
    let study = Study::new(study_config(args));
    let out = study
        .run_from_external(
            std::path::Path::new(&trace),
            args.map.as_deref().map(std::path::Path::new),
        )
        .unwrap_or_else(|e| die_study(e));
    let records = out.metrics.counter("ingest.records_total").unwrap_or(0);
    let quarantined = out.metrics.counter("ingest.quarantined_total").unwrap_or(0);
    println!("ingest records {records} quarantined {quarantined}");
    if !out.quarantine.is_empty() {
        println!("quarantine by reason: {:?}", out.quarantine.by_reason());
    }
    println!(
        "pipeline: {} sessions, {} segments, {} transitions",
        out.cleaning.sessions,
        out.segments.len(),
        out.transitions.len()
    );
    println!("study fingerprint {:#018x}", study_fingerprint(&out));
    if args.metrics.is_some() || args.metrics_out.is_some() {
        let fmt = args.metrics.unwrap_or(MetricsFormat::Json);
        let rendered = taxitrace_obs::render(&out.metrics, fmt);
        match &args.metrics_out {
            Some(path) => std::fs::write(path, rendered)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}"))),
            None => eprint!("{rendered}"),
        }
    }
}

/// `repro mutate <in> <out> [--seed N]`: apply the ingest fuzz mutator
/// (truncation, bit flips, field swaps, encoding garbage, CRLF/BOM,
/// numeric extremes) to a file, deterministically per seed. A test tool
/// for the adversarial-ingest CI smoke: the same seed always produces
/// the same damaged bytes.
fn cmd_mutate(args: &Args) {
    let input = args.operand("mutate needs an input path").to_string();
    let out_path = args
        .operand2
        .clone()
        .unwrap_or_else(|| die("mutate needs an output path"));
    let bytes = std::fs::read(&input)
        .unwrap_or_else(|e| die(&format!("cannot read {input}: {e}")));
    let mutated = taxitrace_ingest::mutate(&bytes, args.seed);
    std::fs::write(&out_path, &mutated)
        .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
    println!(
        "mutated {input} ({} bytes) -> {out_path} ({} bytes) with seed {}",
        bytes.len(),
        mutated.len(),
        args.seed
    );
}

/// `repro store-corrupt --chaos <plan> <file>`: apply the plan's seeded
/// disk faults (bit flips, tail truncation, record duplication, garbage
/// header) to a store file in place. A test tool: the write is
/// deliberately plain, this is the damage the rest of the stack defends
/// against.
fn cmd_store_corrupt(args: &Args) {
    let path = args.operand("store-corrupt needs a store file").to_string();
    let plan_path =
        args.chaos.as_deref().unwrap_or_else(|| die("store-corrupt needs --chaos <plan>"));
    let text = std::fs::read_to_string(plan_path)
        .unwrap_or_else(|e| die(&format!("cannot read chaos plan {plan_path}: {e}")));
    let plan = taxitrace_core::FaultPlan::parse(&text)
        .unwrap_or_else(|e| die(&format!("bad chaos plan {plan_path}: {e}")));
    let mut bytes = std::fs::read(&path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let spans = taxitrace_store::codec::record_spans(&bytes)
        .unwrap_or_else(|e| die(&format!("cannot frame records of {path}: {e}")));
    let applied = plan.corrupt_file(0, &mut bytes, &spans);
    if applied.is_empty() {
        die("chaos plan injects no disk faults (set disk_bit_flips, \
             disk_truncate_bytes, disk_duplicate_record or disk_garbage_header)");
    }
    std::fs::write(&path, &bytes)
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    println!("applied {} disk fault(s) to {path}: {:?}", applied.len(), applied);
}

/// `repro fsck [--repair] <path>`: integrity-scan a store/checkpoint file
/// or directory. Reports per-file version, fingerprint and record counts;
/// with `--repair`, damaged stores are rewritten from their salvageable
/// records (v1 stores upgraded to v2) and corrupt checkpoints removed
/// (the pipeline recomputes them). Exits 1 while unrepaired damage
/// remains.
fn cmd_fsck(args: &Args) {
    let path = args.operand("fsck needs a file or directory").to_string();
    let reports = taxitrace_store::fsck_path(std::path::Path::new(&path), args.repair)
        .unwrap_or_else(|e| die(&format!("fsck failed on {path}: {e}")));
    if reports.is_empty() {
        die(&format!("no store or checkpoint files found under {path}"));
    }
    let mut unrepaired = 0usize;
    for r in &reports {
        let fate = match r.repaired {
            Some(action) => format!("  [{action}]"),
            None => String::new(),
        };
        println!(
            "{:<40} {:<10} v{} fingerprint {:#018x} records {}/{} — {}{}",
            r.path.display(),
            r.kind.label(),
            r.version,
            r.fingerprint,
            r.records_valid,
            r.records_declared,
            r.damage_summary(),
            fate
        );
        for d in r.damage.iter().take(8) {
            println!("    record {}: {} ({})", d.index, d.kind.label(), d.detail);
        }
        if r.damage.len() > 8 {
            println!("    ... {} more damaged record(s)", r.damage.len() - 8);
        }
        if !r.is_clean() && r.repaired.is_none() {
            unrepaired += 1;
        }
    }
    println!(
        "{} file(s) scanned, {} with unrepaired damage",
        reports.len(),
        unrepaired
    );
    if unrepaired > 0 {
        std::process::exit(1);
    }
}

/// Builds the serving snapshot for `serve`/`serve-bench`: replayed from a
/// persisted store when `--store` names one (verified read path, salvage
/// demotion), otherwise simulated from the seed.
fn build_snapshot(args: &Args) -> taxitrace_serve::Snapshot {
    taxitrace_serve::Snapshot::from_output(run_study(args))
}

/// `repro serve [--port P] [--threads N] [--shutdown-file PATH]`: run the
/// HTTP query service. Prints the bound address (ephemeral port resolved)
/// on stdout so scripts can discover it. With `--shutdown-file`, polls
/// for the file and shuts down gracefully when it appears — in-flight
/// requests drain, workers join — so scripts get a clean exit instead of
/// `kill`. Without it, runs until the process is killed.
fn cmd_serve(args: &Args) {
    use std::io::Write as _;
    let workers = args.threads.unwrap_or(4).max(1);
    let snapshot = build_snapshot(args);
    let registry = taxitrace_obs::Registry::new();
    let server = taxitrace_serve::Server::start(snapshot, args.port, workers, registry)
        .unwrap_or_else(|e| die(&format!("cannot bind port {}: {e}", args.port)));
    println!("serving on {} ({} workers)", server.addr(), workers);
    let _ = std::io::stdout().flush();
    match &args.shutdown_file {
        Some(path) => {
            let path = std::path::Path::new(path);
            while !path.exists() {
                std::thread::sleep(std::time::Duration::from_millis(150));
            }
            eprintln!("[repro] shutdown file present; draining");
            server.shutdown();
            println!("server drained and stopped");
        }
        // Runs until the process is killed; metrics are live at /metrics.
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

/// `repro serve-bench [--requests N] [--threads N]`: start the service on
/// an ephemeral port, drive the seeded closed-loop load against it, run
/// the read-path contention comparison, and emit the `BENCH_serve.json`
/// document (stdout, or `--bench-json PATH`).
fn cmd_serve_bench(args: &Args) {
    let workers = args.threads.unwrap_or(4).max(1);
    let registry = taxitrace_obs::Registry::new();
    let server =
        taxitrace_serve::Server::start(build_snapshot(args), 0, workers, registry.clone())
            .unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
    eprintln!("[repro] serve-bench on {} ({} workers)", server.addr(), workers);
    let spec = taxitrace_serve::LoadSpec {
        seed: args.seed,
        clients: workers,
        requests_per_client: (args.requests / workers).max(1),
    };
    let report = taxitrace_serve::run_load(server.addr(), &server.snapshot(), &spec);
    if report.errors > 0 {
        eprintln!("[repro] WARNING: {} request(s) failed", report.errors);
    }
    let served = registry.snapshot().counter("serve.requests_total").unwrap_or(0);
    let contention = taxitrace_serve::contention_bench(workers, 200_000);
    server.shutdown();
    let doc = format!(
        "{{\n  \"schema\": 1,\n  \"seed\": {},\n  \"scale\": {},\n  \"workers\": {},\n  \
         \"served_requests\": {},\n  \"load\": {},\n  \"contention\": {}\n}}\n",
        args.seed,
        args.scale,
        workers,
        served,
        report.to_json(),
        contention.to_json()
    );
    match &args.bench_json {
        Some(path) => std::fs::write(path, &doc)
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}"))),
        None => print!("{doc}"),
    }
}

/// `repro stream [--chaos PLAN] [--checkpoint-dir DIR]`: run the study as
/// a live stream — points arriving one at a time through the bounded
/// queue, trips closed by the watermark, cleaned incrementally — and
/// print the stream report plus the same pipeline fingerprint the batch
/// path reports, so scripts can assert stream/batch parity and that a
/// killed-and-resumed stream converges to the identical output.
fn cmd_stream(args: &Args) {
    let stream_cfg = taxitrace_stream::StreamConfig {
        checkpoint_every: if args.checkpoint_dir.is_some() { 1000 } else { 0 },
        ..taxitrace_stream::StreamConfig::default()
    };
    let dir = args.checkpoint_dir.as_ref().map(std::path::Path::new);
    let mut attempt = 0u32;
    let run = loop {
        match taxitrace_stream::run_stream(study_config(args), &stream_cfg, dir) {
            Ok(run) => break run,
            Err(e) if dir.is_some() && attempt < 4 => {
                attempt += 1;
                eprintln!(
                    "[repro] stream interrupted ({e}); resuming from {} (attempt {attempt})",
                    dir.expect("checked").display()
                );
            }
            Err(e) => die(&format!("stream failed after {attempt} resume(s): {e}")),
        }
    };
    let r = &run.report;
    println!(
        "stream: {} records -> {} trips closed ({} malformed, {} late-dropped quarantined)",
        r.records_total, r.trips_closed, r.records_malformed, r.late_dropped
    );
    println!(
        "flow:   {} backpressure stall(s), {} feeder stall(s), max queue depth {}",
        r.backpressure_stalls, r.feeder_stalls, r.max_queue_depth
    );
    if let Some(cursor) = r.resumed_from {
        println!(
            "resume: {} checkpoint(s), resumed {} time(s), last from record {cursor}",
            r.checkpoints, r.resumes
        );
    }
    println!("study fingerprint {:#018x}", study_fingerprint(&run.output));
    if args.metrics.is_some() || args.metrics_out.is_some() {
        let fmt = args.metrics.unwrap_or(MetricsFormat::Json);
        let rendered = taxitrace_obs::render(&run.output.metrics, fmt);
        match &args.metrics_out {
            Some(path) => std::fs::write(path, rendered)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}"))),
            None => eprint!("{rendered}"),
        }
    }
}

fn run(experiment: &str, args: &Args) {
    println!("\n================ {experiment} ================");
    match experiment {
        "fig2" => fig2(args),
        "table1" => table1(args),
        "table2" => table2(args),
        "table3" => table3(args),
        "table4" => table4(args),
        "table5" => table5(args),
        "fig3" => fig3(args),
        "fig4" => fig4(args),
        "fig5" => fig5(args),
        "fig6" => fig6(args),
        "fig7" => fig7(args),
        "fig8" => fig8(args),
        "fig9" => fig9(args),
        "fig10" => fig10(args),
        "validation" => validation(args),
        "ablation-thick" => ablation_thick(args),
        "ablation-lookahead" => ablation_lookahead(args),
        "ablation-rules" => ablation_rules(args),
        "ablation-grid" => ablation_grid(args),
        other => die(&format!("unknown experiment '{other}'")),
    }
}

// ---------------------------------------------------------------- tables

fn table1(args: &Args) {
    let out = output(args);
    println!("Junction pairs with merged element chains (§IV-A, cf. paper Table 1):\n");
    print!("{}", render_table1(out, 6));
    let multi = out
        .city
        .graph
        .edges()
        .iter()
        .filter(|e| e.elements.len() >= 2)
        .count();
    println!(
        "\n{} of {} edges merge multiple traffic elements (paper shows such rows explicitly).",
        multi,
        out.city.graph.num_edges()
    );
}

fn table2(args: &Args) {
    let out = output(args);
    let c = SegmentationConfig::default();
    println!("Active Table 2 segmentation rules and their fire counts on this study:\n");
    println!(
        "1. no position change within {} s (freeze radius {} m)      → fired {}",
        c.rule1_window_s, c.freeze_radius_m, out.cleaning.rule_fires[0]
    );
    println!(
        "2. silent gap > {} s with movement < {} km                  → fired {}",
        c.rule2_gap_s,
        c.rule24_distance_m / 1000.0,
        out.cleaning.rule_fires[1]
    );
    println!(
        "3. pairwise speed < {} m/s (guarded by gap > {} s)        → fired {}",
        c.rule3_speed_ms, c.rule3_min_gap_s, out.cleaning.rule_fires[2]
    );
    println!(
        "4. gap > {} s, moved < {} km, speed above rule-3 bound      → fired {}",
        c.rule4_gap_s,
        c.rule24_distance_m / 1000.0,
        out.cleaning.rule_fires[3]
    );
    println!(
        "5. re-split of > {} km trips with rule 1 at {} s            → fired {}",
        c.rule5_trigger_m / 1000.0,
        c.rule5_window_s,
        out.cleaning.rule_fires[4]
    );
    println!(
        "\nfilters: kept {}, dropped {} (< 5 points) + {} (> 30 km)",
        out.cleaning.segments_kept,
        out.cleaning.segments_too_few_points,
        out.cleaning.segments_too_long
    );
}

const PAPER_TABLE3: [[usize; 5]; 7] = [
    [2409, 636, 89, 79, 65],
    [3068, 1282, 172, 156, 128],
    [1790, 447, 44, 32, 19],
    [2486, 622, 102, 93, 73],
    [2429, 616, 88, 75, 65],
    [1815, 625, 113, 108, 96],
    [4080, 1109, 162, 131, 98],
];

fn table3(args: &Args) {
    let out = output(args);
    println!("Reproduced funnel (scale {} of the study year):\n", args.scale);
    print!("{}", render_table3(out));
    println!("\nPaper Table 3:");
    for (i, r) in PAPER_TABLE3.iter().enumerate() {
        println!(
            "{:<5} {:>10} {:>10} {:>12} {:>12} {:>13}",
            i + 1,
            r[0],
            r[1],
            r[2],
            r[3],
            r[4]
        );
    }
    let ours: usize = out.funnel().iter().map(|r| r.segments_total).sum();
    let trans: usize = out.funnel().iter().map(|r| r.transitions_total).sum();
    let paper_segs: usize = PAPER_TABLE3.iter().map(|r| r[0]).sum();
    let paper_trans: usize = PAPER_TABLE3.iter().map(|r| r[2]).sum();
    println!(
        "\nshape: transitions/segments = {:.3} (ours) vs {:.3} (paper)",
        trans as f64 / ours.max(1) as f64,
        paper_trans as f64 / paper_segs as f64
    );
}

fn table4(args: &Args) {
    let out = output(args);
    print!("{}", render_table4(&Table4::compute(out)));
    // §VI: "Low speed also correlates to fuel consumption".
    let low: Vec<f64> = out.transitions.iter().map(|t| t.low_speed_pct).collect();
    let fuel_km: Vec<f64> =
        out.transitions.iter().map(|t| t.fuel_ml / t.dist_km.max(0.1)).collect();
    if let Some(r) = taxitrace_stats::pearson(&low, &fuel_km) {
        println!("\ncorr(low-speed %, fuel/km) = {r:+.2} (paper: positive)");
    }
    println!(
        "\npaper shape check (means): low-speed T-S/S-T > T-L/L-T; normal speed reversed;\n\
         light and junction counts similar across directions.\n"
    );
    println!("paper means for reference:");
    println!("  low speed %   : T-S 38.2, S-T 33.3, T-L 23.3, L-T 24.2");
    println!("  normal speed %: T-S 6.4,  S-T 8.8,  T-L 14.7, L-T 14.5");
    println!("  traffic lights: T-S 8,    S-T 5,    T-L 7,    L-T 7");
    println!("  junctions     : T-S 23,   S-T 23,   T-L 22,   L-T 24");
}

fn table5(args: &Args) {
    let out = output(args);
    let grid = out.grid_stats(None);
    print!("{}", render_table5(&grid.table5()));
    println!("\npaper Table 5 (cell mean speeds):");
    println!("  lights = 0            : min 11.96 max 53.27 mean 25.53 var 231.5");
    println!("  lights = 0 & stops = 0: min 11.96 max 53.27 mean 29.25 var 303.5");
    println!("  lights > 0 & stops > 0: min  9.26 max 32.09 mean 18.78 var  49.9");
    println!("  lights > 0            : min  9.26 max 32.09 mean 18.71 var  47.9");
    println!("shape: lights (and lights+stops) lower the mean and sharply lower the variance.");
}

// ---------------------------------------------------------------- figures

/// Fig. 2: the selected O-D pairs and their thick geometry on the map.
fn fig2(args: &Args) {
    let out = output(args);
    let analyzer = OdAnalyzer::from_city(&out.city);
    println!(
        "Study area with named O-D roads and thick geometry (paper Fig. 2).\n\
         half width {} m, crossing-angle window {}°; centre area marked 'c'.\n",
        analyzer.config().thick_half_width_m,
        analyzer.config().max_angle_deg
    );
    // 17 × 17 map of 300 m cells over [-2550, 2550]².
    for iy in (-8..=8).rev() {
        let mut line = String::new();
        for ix in -8..=8 {
            let p = Point::new(ix as f64 * 300.0, iy as f64 * 300.0);
            let mut ch = "  ";
            if out.city.center_area.contains(p) {
                ch = " c";
            }
            for ep in analyzer.endpoints() {
                if ep.corridor.contains(p) {
                    ch = match ep.name.as_str() {
                        "T" => " T",
                        "S" => " S",
                        _ => " L",
                    };
                }
            }
            line.push_str(ch);
        }
        println!("  |{line}|");
    }
    println!("\nstudied ordered pairs: T-L, L-T, T-S, S-T (the paper's red arrows).");
}

fn fig3(args: &Args) {
    let out = output(args);
    let taxi = TaxiId(1);
    let speeds: Vec<f64> = out
        .transitions
        .iter()
        .filter(|t| t.taxi == taxi)
        .flat_map(|t| t.points.iter().map(|p| p.speed_kmh))
        .collect();
    println!(
        "Cleaned point speeds for taxi 1: {} points (paper: 4186 at full scale).",
        speeds.len()
    );
    histogram("speed (km/h)", &speeds, &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0]);
}

fn fig4(args: &Args) {
    let out = output(args);
    println!("Taxi 1 point speeds by direction (paper Fig. 4):\n");
    for split in directional_speeds(out, Some(TaxiId(1))) {
        let speeds: Vec<f64> = split.points.iter().map(|(_, s)| *s).collect();
        println!(
            "{:<4} n={:<6} mean {:>5.1} km/h",
            split.pair,
            speeds.len(),
            split.mean_speed
        );
    }
    println!("\nall taxis:");
    for split in directional_speeds(out, None) {
        println!("{:<4} n={:<6} mean {:>5.1} km/h", split.pair, split.points.len(), split.mean_speed);
    }
}

fn fig5(args: &Args) {
    let out = output(args);
    println!("Point speeds by season (paper Fig. 5 + §VI deltas):\n");
    for (season, pts) in seasonal_speeds(out, None) {
        let speeds: Vec<f64> = pts.iter().map(|(_, s)| *s).collect();
        let mean = if speeds.is_empty() {
            f64::NAN
        } else {
            speeds.iter().sum::<f64>() / speeds.len() as f64
        };
        println!("{:<7} n={:<7} mean {:>5.2} km/h", season.label(), speeds.len(), mean);
    }
    println!("\ndeltas vs annual mean (paper: winter -0.07, spring +0.46, summer +0.70, autumn +1.38):");
    for d in seasonal_deltas(out) {
        println!("{:<7} {:+.2} km/h (n={})", d.season.label(), d.delta_kmh, d.n);
    }
}

fn fig6(args: &Args) {
    let out = output(args);
    let grid = out.grid_stats(Some("L-T"));
    println!(
        "L-T per-cell average speed with feature counts (paper Fig. 6).\n\
         Study-area feature totals {{lights, stops, ped.crossings}} = {:?} \
         (paper: {{67, 48, 293}}; paper also reports 271 other crossings).\n",
        grid.feature_totals
    );
    println!(
        "{:<14} {:>5} {:>10} {:>7} {:>6} {:>10}",
        "cell", "n", "mean km/h", "lights", "stops", "crossings"
    );
    for (cell, stat) in grid.cells.iter().take(24) {
        println!(
            "{:<14} {:>5} {:>10.1} {:>7} {:>6} {:>10}",
            cell.to_string(),
            stat.n,
            stat.mean_speed,
            stat.traffic_lights,
            stat.bus_stops,
            stat.pedestrian_crossings
        );
    }
    println!("… ({} cells total)", grid.cells.len());
}

fn fig7(args: &Args) {
    let out = output(args);
    let m = mixed_model(out).unwrap_or_else(|e| die(&format!("mixed model: {e}")));
    println!(
        "QQ plot of the {} cell-intercept BLUPs (paper Fig. 7: near-linear except far tails):\n",
        m.qq.len()
    );
    println!("{:>12} {:>12}", "theoretical", "sample blup");
    let n = m.qq.len();
    for idx in [0, n / 8, n / 4, n / 2, 3 * n / 4, 7 * n / 8, n - 1] {
        let p = &m.qq[idx];
        println!("{:>12.3} {:>12.3}", p.theoretical, p.sample);
    }
    let q25 = &m.qq[n / 4];
    let q75 = &m.qq[3 * n / 4];
    let slope = (q75.sample - q25.sample) / (q75.theoretical - q25.theoretical);
    println!(
        "\nquartile slope {:.2} vs sd(blups) — straightness in the bulk justifies the\nGaussian regularisation, matching the paper's conclusion.",
        slope
    );
}

fn fig8(args: &Args) {
    let out = output(args);
    let m = mixed_model(out).unwrap_or_else(|e| die(&format!("mixed model: {e}")));
    println!(
        "Cell intercepts with 95% limits, sorted (paper Fig. 8; coefficients ca. -15…+20 km/h):\n"
    );
    let n = m.cells.len();
    println!("{:>5} {:>12} {:>9} {:>20}", "rank", "blup km/h", "se", "95% interval");
    for idx in [0usize, n / 10, n / 4, n / 2, 3 * n / 4, 9 * n / 10, n - 1] {
        let c = &m.cells[idx];
        println!(
            "{:>5} {:>12.2} {:>9.2} [{:>7.2}, {:>7.2}]  (n={})",
            idx,
            c.blup,
            c.se,
            c.blup - 1.96 * c.se,
            c.blup + 1.96 * c.se,
            c.n
        );
    }
    println!(
        "\nspread: {:+.1} … {:+.1} km/h over {} cells; sigma_u = {:.1} km/h",
        m.cells[0].blup,
        m.cells[n - 1].blup,
        n,
        m.sigma2_u.sqrt()
    );
    println!(
        "geography effect: REML LRT = {:.0}, p {} (paper: \"strong evidence of the effect of geography\")",
        m.geography_lrt,
        if m.geography_p < 1e-12 { "< 1e-12".to_string() } else { format!("= {:.2e}", m.geography_p) }
    );
}

fn fig9(args: &Args) {
    let out = output(args);
    let m = mixed_model(out).unwrap_or_else(|e| die(&format!("mixed model: {e}")));
    let by_cell: HashMap<CellId, f64> = m.cells.iter().map(|c| (c.cell, c.blup)).collect();
    println!("Cell intercept predictions on the map (paper Fig. 9):");
    println!("  ## <= -6  == -6..-2  .. -2..+2  ++ > +2 km/h vs grand mean\n");
    for iy in (-8..=8).rev() {
        let mut line = String::new();
        for ix in -8..=8 {
            line.push_str(match by_cell.get(&CellId { ix, iy }) {
                None => "  ",
                Some(b) if *b <= -6.0 => "##",
                Some(b) if *b <= -2.0 => "==",
                Some(b) if *b < 2.0 => "..",
                Some(_) => "++",
            });
        }
        println!("  |{line}|");
    }
    // Centre-vs-outskirts contrast (the paper's centre slowdowns reach -8 km/h).
    let grid = Grid::new(Point::new(0.0, 0.0), out.config.grid_size_m);
    let (mut c_sum, mut c_n, mut o_sum, mut o_n) = (0.0, 0usize, 0.0, 0usize);
    for c in &m.cells {
        let d = grid.cell_center(c.cell).distance(Point::new(0.0, 0.0));
        if d < 500.0 {
            c_sum += c.blup;
            c_n += 1;
        } else if d > 1200.0 {
            o_sum += c.blup;
            o_n += 1;
        }
    }
    if c_n > 0 && o_n > 0 {
        println!(
            "\ncentre cells mean {:+.1} km/h vs outskirts {:+.1} km/h",
            c_sum / c_n as f64,
            o_sum / o_n as f64
        );
    }
}

fn fig10(args: &Args) {
    let out = output(args);
    println!(
        "Low-speed % by temperature class, lights < {} (white) vs >= {} (grey) — paper Fig. 10:\n",
        out.config.fig10_light_threshold, out.config.fig10_light_threshold
    );
    println!("{:<10} {:>18} {:>18}", "class", "< thresh lights", ">= thresh lights");
    let cells = temperature_analysis(out);
    for chunk in cells.chunks(2) {
        let few = &chunk[0];
        let many = &chunk[1];
        println!(
            "{:<10} {:>12.1}% (n={:<3}) {:>10.1}% (n={:<3})",
            few.class.label(),
            few.mean_low_speed_pct,
            few.n,
            many.mean_low_speed_pct,
            many.n
        );
    }
    println!(
        "\nshape: the >= group should sit above the < group in every populated class\n\
         (the paper: \"in general there is an increase of low speed, also independent\n\
         of the weather conditions\")."
    );
}

// ------------------------------------------------------------- validation

fn validation(args: &Args) {
    let out = output(args);
    // Ground-truth checks the paper could not run.
    let config = CleaningConfig::default();
    let mut repaired = 0;
    let mut order_ok = 0;
    let (mut legs, mut rec, mut segs, mut matched) = (0, 0, 0, 0);
    for session in out.store.sessions() {
        let cleaned = clean_session(session, &config);
        if cleaned.order_report.orders_differed {
            repaired += 1;
            let mut ok = true;
            let (ordered, _) = taxitrace_cleaning::repair_order(&session.points);
            for w in ordered.windows(2) {
                if w[0].truth.seq > w[1].truth.seq {
                    ok = false;
                    break;
                }
            }
            if ok {
                order_ok += 1;
            }
        }
        let v = validate_segments(session, &cleaned, 0.7);
        legs += v.truth_legs;
        rec += v.recovered_legs;
        segs += v.segments;
        matched += v.matched_segments;
    }
    println!("order repair : {repaired} corrupted sessions, {order_ok} perfectly restored");
    println!(
        "segmentation : recall {:.1}% ({rec}/{legs}), precision {:.1}% ({matched}/{segs})",
        100.0 * rec as f64 / legs.max(1) as f64,
        100.0 * matched as f64 / segs.max(1) as f64
    );

    // Matching accuracy on a sample of sessions.
    let index = CandidateIndex::new(&out.city.graph, &out.city.elements);
    let mc = MatchConfig::default();
    let mut inc = MatchAccuracy::default();
    let mut nea = MatchAccuracy::default();
    for session in out.store.sessions().iter().take(30) {
        let pts = session.points_in_true_order();
        inc.merge(&evaluate(
            &out.city.graph,
            &taxitrace_matching::incremental::match_trace(&out.city.graph, &index, &pts, &mc),
            &pts,
        ));
        nea.merge(&evaluate(
            &out.city.graph,
            &taxitrace_matching::nearest::match_trace(&out.city.graph, &index, &pts, &mc),
            &pts,
        ));
    }
    println!(
        "map-matching : incremental edge accuracy {:.1}% vs nearest {:.1}% ({} points)",
        100.0 * inc.edge_accuracy(),
        100.0 * nea.edge_accuracy(),
        inc.evaluated
    );
}

// -------------------------------------------------------------- ablations

fn ablation_thick(args: &Args) {
    let out = output(args);
    println!("Thick-geometry width / angle window vs funnel yield:\n");
    println!("{:>9} {:>7} {:>12} {:>13}", "width m", "angle", "transitions", "post-filtered");
    for width in [15.0, 40.0, 120.0, 200.0] {
        for angle in [20.0, 40.0, 60.0] {
            let mut config = OdConfig::new(out.city.center_area);
            config.thick_half_width_m = width;
            config.max_angle_deg = angle;
            let endpoints: Vec<OdEndpoint> = out
                .city
                .od_roads
                .iter()
                .map(|r| OdEndpoint {
                    name: r.name.clone(),
                    corridor: Corridor::new(r.axis.clone(), width),
                })
                .collect();
            let analyzer = OdAnalyzer::new(endpoints, config);
            let ts = analyzer.transitions(&out.segments);
            let post = ts.iter().filter(|t| t.post_filtered).count();
            println!("{:>9} {:>7} {:>12} {:>13}", width, angle, ts.len(), post);
        }
    }
}

fn ablation_lookahead(args: &Args) {
    let out = output(args);
    let index = CandidateIndex::new(&out.city.graph, &out.city.elements);
    println!("Incremental matcher look-ahead depth vs accuracy:\n");
    println!("{:>6} {:>14} {:>14}", "depth", "element acc", "edge acc");
    for depth in [0usize, 1, 2, 3] {
        let mc = MatchConfig { lookahead: depth, ..MatchConfig::default() };
        let mut acc = MatchAccuracy::default();
        for session in out.store.sessions().iter().take(25) {
            let pts = session.points_in_true_order();
            acc.merge(&evaluate(
                &out.city.graph,
                &taxitrace_matching::incremental::match_trace(&out.city.graph, &index, &pts, &mc),
                &pts,
            ));
        }
        println!(
            "{:>6} {:>13.1}% {:>13.1}%",
            depth,
            100.0 * acc.element_accuracy(),
            100.0 * acc.edge_accuracy()
        );
    }
}

fn ablation_rules(args: &Args) {
    let out = output(args);
    println!("Table 2 rule sensitivity (each rule disabled in turn):\n");
    println!("{:<14} {:>9} {:>10} {:>9} {:>10}", "config", "segments", "recall", "prec.", "rule fires");
    let variants: Vec<(&str, SegmentationConfig)> = vec![
        ("all rules", SegmentationConfig::default()),
        ("no rule 1", SegmentationConfig { rule1_window_s: i64::MAX / 4, ..Default::default() }),
        ("no rule 2", SegmentationConfig { rule2_gap_s: i64::MAX / 4, ..Default::default() }),
        ("no rule 3", SegmentationConfig { rule3_speed_ms: -1.0, ..Default::default() }),
        ("no rule 4", SegmentationConfig { rule4_gap_s: i64::MAX / 4, ..Default::default() }),
    ];
    for (name, seg_cfg) in variants {
        let cfg = CleaningConfig { segmentation: seg_cfg, ..CleaningConfig::default() };
        let (mut legs, mut rec, mut segs, mut matched, mut fires) = (0, 0, 0, 0, 0);
        for session in out.store.sessions() {
            let cleaned = clean_session(session, &cfg);
            let v = validate_segments(session, &cleaned, 0.7);
            legs += v.truth_legs;
            rec += v.recovered_legs;
            segs += v.segments;
            matched += v.matched_segments;
            fires += cleaned.stats.segmentation.rule_fires.iter().sum::<usize>();
        }
        println!(
            "{:<14} {:>9} {:>9.1}% {:>8.1}% {:>10}",
            name,
            segs,
            100.0 * rec as f64 / legs.max(1) as f64,
            100.0 * matched as f64 / segs.max(1) as f64,
            fires
        );
    }
}

fn ablation_grid(args: &Args) {
    let out = output(args);
    println!("Analysis grid size vs mixed-model geography effect:\n");
    println!("{:>8} {:>7} {:>12} {:>12} {:>14}", "cell m", "cells", "sigma2_u", "sigma2_e", "blup spread");
    for size in [100.0, 200.0, 400.0] {
        let mut cfg = out.config.clone();
        cfg.grid_size_m = size;
        // Re-run only the analysis, not the pipeline: clone the output
        // view with a different grid by fitting on the same transitions.
        let tmp = StudyOutputView { out, grid_size_m: size };
        match tmp.fit() {
            Some((cells, s2u, s2e, spread)) => println!(
                "{:>8} {:>7} {:>12.2} {:>12.2} {:>14.1}",
                size, cells, s2u, s2e, spread
            ),
            None => println!("{size:>8}  (model failed)"),
        }
        let _ = cfg;
    }
}

/// Helper re-fitting the Eq. 3 model at a different grid size.
struct StudyOutputView<'a> {
    out: &'a StudyOutput,
    grid_size_m: f64,
}

impl StudyOutputView<'_> {
    fn fit(&self) -> Option<(usize, f64, f64, f64)> {
        use taxitrace_stats::{Matrix, RandomIntercept};
        let grid = Grid::new(Point::new(0.0, 0.0), self.grid_size_m);
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for t in &self.out.transitions {
            for p in &t.points {
                let c = grid.cell_of(p.pos);
                y.push(p.speed_kmh);
                groups.push(((c.ix as u32 as u64) << 32) | (c.iy as u32 as u64));
            }
        }
        let x = Matrix::from_rows(y.len(), 1, vec![1.0; y.len()]);
        let fit = RandomIntercept::default().fit(&y, &x, &groups).ok()?;
        let spread = fit
            .groups
            .iter()
            .map(|g| g.blup)
            .fold(f64::NEG_INFINITY, f64::max)
            - fit.groups.iter().map(|g| g.blup).fold(f64::INFINITY, f64::min);
        Some((fit.groups.len(), fit.sigma2_u, fit.sigma2_e, spread))
    }
}

// ------------------------------------------------------------------ misc

fn histogram(label: &str, values: &[f64], edges: &[f64]) {
    if values.is_empty() {
        println!("(no data)");
        return;
    }
    println!("\n{label} histogram:");
    for w in edges.windows(2) {
        let count = values.iter().filter(|v| **v >= w[0] && **v < w[1]).count();
        let bar_len = (60 * count / values.len().max(1)).min(60);
        println!(
            "{:>5.0}-{:<5.0} {:>6} |{}",
            w[0],
            w[1],
            count,
            "#".repeat(bar_len)
        );
    }
    // Seasonal sanity: unused import guard.
    let _ = Season::Winter;
}
