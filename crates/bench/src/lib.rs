//! Shared fixtures for the benchmark suite and the `repro` experiment
//! harness.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use taxitrace_core::{Study, StudyConfig, StudyOutput};
use taxitrace_roadnet::synth::{generate, OuluConfig, SyntheticCity};
use taxitrace_traces::{simulate_fleet, FleetConfig, FleetData};
use taxitrace_weather::WeatherModel;

/// The default synthetic city used by benches.
pub fn bench_city() -> SyntheticCity {
    generate(&OuluConfig::default())
}

/// A small simulated fleet for micro-benchmarks.
pub fn bench_fleet(city: &SyntheticCity, seed: u64, scale: f64) -> FleetData {
    let weather = WeatherModel::new(seed);
    let mut cfg = FleetConfig::tiny(seed);
    cfg.scale = scale;
    simulate_fleet(city, &weather, &cfg)
}

/// A reduced study output for analysis benches.
pub fn bench_study(seed: u64, scale: f64) -> StudyOutput {
    match Study::new(StudyConfig::scaled(seed, scale)).run() {
        Ok(out) => out,
        // lint:allow(panic-free-library): bench harness entry point
        Err(e) => panic!("bench study failed: {e}"),
    }
}
