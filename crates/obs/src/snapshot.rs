//! Point-in-time metric values, detached from the live registry.

/// One histogram's frozen state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    /// Ascending upper bucket bounds; `counts` has one extra overflow cell.
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub total: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }
}

/// One finished span's frozen state.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Start order among all spans of the registry.
    pub seq: u64,
    /// Hierarchical `/`-separated path.
    pub path: String,
    pub wall_s: f64,
    pub items: u64,
}

impl SpanSnapshot {
    /// Items per second (0.0 when the span carried no items or no time).
    pub fn items_per_s(&self) -> f64 {
        if self.items == 0 || self.wall_s <= 0.0 {
            0.0
        } else {
            self.items as f64 / self.wall_s
        }
    }

    /// Nesting depth: `"study"` is 0, `"study/clean"` is 1.
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }
}

/// Deterministically ordered copy of every metric in a [`crate::Registry`]:
/// counters/gauges/histograms sorted by name, spans by start order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub spans: Vec<SpanSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The last recorded span at `path`, if any.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().rev().find(|s| s.path == path)
    }

    /// Total wall-clock seconds over every span record at `path`.
    pub fn span_wall_s(&self, path: &str) -> f64 {
        self.spans.iter().filter(|s| s.path == path).map(|s| s.wall_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, wall_s: f64, items: u64) -> SpanSnapshot {
        SpanSnapshot { seq: 0, path: path.to_string(), wall_s, items }
    }

    #[test]
    fn accessors() {
        let snap = MetricsSnapshot {
            counters: vec![("a".into(), 3)],
            gauges: vec![("g".into(), 0.5)],
            histograms: vec![],
            spans: vec![span("s", 2.0, 10), span("s", 1.0, 4)],
        };
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("g"), Some(0.5));
        assert_eq!(snap.span("s").map(|s| s.items), Some(4), "last record wins");
        assert_eq!(snap.span_wall_s("s"), 3.0);
    }

    #[test]
    fn throughput_and_depth() {
        let s = span("study/clean", 2.0, 100);
        assert_eq!(s.items_per_s(), 50.0);
        assert_eq!(s.depth(), 1);
        assert_eq!(span("x", 0.0, 5).items_per_s(), 0.0);
    }
}
