//! Hierarchical wall-clock spans.
//!
//! A [`Span`] measures one stretch of work. Hierarchy is encoded in the
//! path (`"study/match_fuse/index"`); nesting is by construction — open a
//! child span while the parent guard is alive. Spans report wall-clock
//! seconds plus an optional item count, from which sinks derive per-stage
//! throughput.

use std::time::Instant;

use crate::registry::Registry;

/// Live span guard; records its measurement into the registry when
/// finished (or dropped).
#[derive(Debug)]
pub struct Span {
    registry: Registry,
    path: String,
    seq: u64,
    start: Instant,
    items: u64,
    finished: bool,
}

impl Span {
    pub(crate) fn start(registry: Registry, path: String, seq: u64) -> Self {
        Self { registry, path, seq, start: Instant::now(), items: 0, finished: false }
    }

    /// Sets the number of items this span processed (for throughput).
    pub fn set_items(&mut self, items: u64) {
        self.items = items;
    }

    /// Adds to the span's item count.
    pub fn add_items(&mut self, items: u64) {
        self.items += items;
    }

    /// Elapsed wall-clock so far, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stops the clock and records the measurement.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.registry.record_span_with_seq(
            self.seq,
            &self.path,
            self.start.elapsed().as_secs_f64(),
            self.items,
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_once() {
        let reg = Registry::new();
        let mut span = reg.span("a/b");
        span.set_items(10);
        span.finish();
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "a/b");
        assert_eq!(snap.spans[0].items, 10);
        assert!(snap.spans[0].wall_s >= 0.0);
    }

    #[test]
    fn drop_records_too() {
        let reg = Registry::new();
        {
            let _span = reg.span("dropped");
        }
        assert_eq!(reg.snapshot().spans.len(), 1);
    }

    #[test]
    fn nested_spans_keep_start_order() {
        let reg = Registry::new();
        let parent = reg.span("study");
        let child = reg.span("study/clean");
        child.finish();
        parent.finish();
        let snap = reg.snapshot();
        // Parent started first, so it sorts first even though the child
        // finished earlier.
        assert_eq!(snap.spans[0].path, "study");
        assert_eq!(snap.spans[1].path, "study/clean");
    }
}
