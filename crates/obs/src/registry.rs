//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind cheap `Arc`-cloned handles.
//!
//! Registration (name → handle) takes a short mutex; every increment or
//! observation afterwards is a single atomic operation on the shared
//! cell, so hot loops touch no lock. Handles stay valid for the life of
//! the registry and can be cloned freely across worker threads.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
use crate::span::Span;

/// A monotonically increasing `u64` metric.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // sync(Counter): monotonic telemetry; RMW atomicity is the whole
        // contract, readers tolerate slightly stale values.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // sync(Counter): value-only read of a monotonic counter.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` metric (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        // sync(Gauge): last-write-wins cell; no other data rides on it.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        // sync(Gauge): value-only read.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    /// Upper bucket bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One cell per bound plus the overflow cell.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Running sum of observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram; bounds are set at registration and never
/// reallocated, so observation is lock-free.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    pub fn observe(&self, v: f64) {
        let cells = &self.0;
        let idx = cells.bounds.partition_point(|b| v > *b);
        cells.counts[idx].fetch_add(1, Ordering::Relaxed); // sync(counts): merged by RMW atomicity
        cells.total.fetch_add(1, Ordering::Relaxed); // sync(total): merged by RMW atomicity
        // sync(sum_bits): CAS accumulation; no cross-cell invariant, so the
        // snapshot may observe counts/total/sum at different instants.
        let mut old = cells.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            // sync(sum_bits): retry loop publishes nothing beyond the sum.
            match cells.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => old = actual,
            }
        }
    }

    pub fn total(&self) -> u64 {
        // sync(total): value-only read of a monotonic counter.
        self.0.total.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        // sync(sum_bits): value-only read.
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// A finished span measurement (see [`Span`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Start order among all spans of this registry.
    pub seq: u64,
    /// Hierarchical path, `/`-separated (`"study/clean"`).
    pub path: String,
    pub wall_s: f64,
    /// Items processed inside the span (0 when not applicable).
    pub items: u64,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    span_seq: AtomicU64,
}

/// The root object: hands out metric handles and snapshots their values.
///
/// Cloning a `Registry` clones the `Arc`; all clones see the same
/// metrics. The registry is `Send + Sync` and safe to share with worker
/// threads.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("counters", &snap.counters.len())
            .field("gauges", &snap.gauges.len())
            .field("histograms", &snap.histograms.len())
            .field("spans", &snap.spans.len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. Names are `.`-separated lowercase (`"clean.sessions"`).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, creating it at 0.0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`; `bounds` (ascending upper
    /// bucket bounds) apply on first registration and are ignored for an
    /// existing histogram of the same name.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_string())
            .or_insert_with(|| {
                let mut counts = Vec::with_capacity(bounds.len() + 1);
                counts.resize_with(bounds.len() + 1, AtomicU64::default);
                Histogram(Arc::new(HistogramCells {
                    bounds: bounds.to_vec(),
                    counts,
                    total: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// Starts a wall-clock span at `path` (`/`-separated hierarchy).
    /// The measurement is recorded when the returned guard is finished
    /// or dropped.
    pub fn span(&self, path: &str) -> Span {
        // sync(span_seq): uniqueness from RMW atomicity alone.
        let seq = self.inner.span_seq.fetch_add(1, Ordering::Relaxed);
        Span::start(self.clone(), path.to_string(), seq)
    }

    /// Records an already-measured span. This is what [`Span`] calls on
    /// finish; tests and views use it to inject deterministic timings.
    pub fn record_span(&self, path: &str, wall_s: f64, items: u64) {
        // sync(span_seq): uniqueness from RMW atomicity alone.
        let seq = self.inner.span_seq.fetch_add(1, Ordering::Relaxed);
        self.record_span_with_seq(seq, path, wall_s, items);
    }

    pub(crate) fn record_span_with_seq(
        &self,
        seq: u64,
        path: &str,
        wall_s: f64,
        items: u64,
    ) {
        let mut spans = self.inner.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        spans.push(SpanRecord { seq, path: to_owned_path(path), wall_s, items });
    }

    /// A point-in-time copy of every metric, ordered deterministically:
    /// counters/gauges/histograms by name, spans by start order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                bounds: h.0.bounds.clone(),
                // sync(counts): snapshot tolerates per-cell staleness.
                counts: h.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                total: h.total(),
                sum: h.sum(),
            })
            .collect();
        let mut spans: Vec<SpanSnapshot> = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|r| SpanSnapshot {
                seq: r.seq,
                path: r.path.clone(),
                wall_s: r.wall_s,
                items: r.items,
            })
            .collect();
        spans.sort_by_key(|s| s.seq);
        MetricsSnapshot { counters, gauges, histograms, spans }
    }
}

fn to_owned_path(path: &str) -> String {
    path.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x").get(), 4);
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        let g = reg.gauge("g");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(reg.gauge("g").get(), -2.25);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        // 0.5 and 1.0 land in the first bucket (bounds are inclusive),
        // 5.0 in the second, 100.0 in the +Inf overflow cell.
        assert_eq!(hs.counts, vec![2, 1, 1]);
        assert_eq!(hs.total, 4);
        assert!((hs.sum - 106.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_orders_by_name_and_seq() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        reg.record_span("second", 0.2, 0);
        reg.record_span("first", 0.1, 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "b");
        assert_eq!(snap.spans[0].path, "second", "spans keep start order");
    }

    #[test]
    fn threaded_counter_is_exact() {
        let reg = Registry::new();
        let c = reg.counter("n");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
