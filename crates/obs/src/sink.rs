//! Render a [`MetricsSnapshot`] for humans, for tooling, or for scrapes.
//!
//! Three sinks, all pure string renderers over the same snapshot:
//!
//! * **table** — aligned sections for terminals (spans indented by depth);
//! * **json** — one stable-schema JSON object (hand-rolled, no serializer
//!   dependency; keys sorted, floats at fixed precision) for golden tests
//!   and the CI schema check;
//! * **prometheus** — the text exposition format, `taxitrace_`-prefixed.

use std::fmt::Write as _;

use crate::snapshot::MetricsSnapshot;

/// JSON schema version emitted by [`render_json`]; bump on breaking
/// structural change so the CI schema check fails loudly. Version 2
/// added the fault-tolerance metric families (`quarantine.*`, `chaos.*`,
/// `exec.task_*`, `match.gap_budget_exhausted`); version 3 added the
/// storage-integrity families (`store.records_total`,
/// `store.records_valid`, `store.corrupt_records`, `store.damaged.*`);
/// version 4 added the serving families (`serve.requests_total`,
/// `serve.requests.*`, `serve.errors_total`, `serve.latency_us`,
/// `serve.snapshot_swaps`, `serve.epoch_refreshes`, `serve.workers`);
/// version 5 added the streaming families (`stream.records_total`,
/// `stream.trips_closed`, `stream.late_dropped`, `stream.queue_depth`,
/// `stream.watermark_lag_s`, `stream.window.*`, …) and the serving
/// admission-control metrics (`serve.shed_total`, `serve.max_inflight`);
/// version 6 added the untrusted-ingestion families (`ingest.records_total`,
/// `ingest.records_valid`, `ingest.quarantined_total`, `ingest.damaged.*`,
/// `ingest.sessions`, `ingest.map.records_total`) and the header-hardening
/// counter (`serve.oversize_total`).
pub const JSON_SCHEMA_VERSION: u32 = 6;

/// Output format of [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    Table,
    Json,
    Prometheus,
}

impl MetricsFormat {
    /// Parses `"table"`, `"json"` or `"prometheus"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "table" => Some(Self::Table),
            "json" => Some(Self::Json),
            "prometheus" | "prom" => Some(Self::Prometheus),
            _ => None,
        }
    }
}

/// Renders `snap` in the chosen format.
pub fn render(snap: &MetricsSnapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Table => render_table(snap),
        MetricsFormat::Json => render_json(snap),
        MetricsFormat::Prometheus => render_prometheus(snap),
    }
}

/// Fixed-precision float that survives round-trips through text diffs.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        // JSON has no Inf/NaN literals; clamp to null-ish zero.
        "0.000000".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Human-readable aligned sections.
pub fn render_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (wall clock, items, throughput):\n");
        for s in &snap.spans {
            let indent = "  ".repeat(s.depth());
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let _ = write!(out, "  {indent}{name:<24} {:>9.1} ms", s.wall_s * 1e3);
            if s.items > 0 {
                let _ = write!(out, " {:>10} items {:>12.0}/s", s.items, s.items_per_s());
            }
            out.push('\n');
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<40} {v:>12}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<40} {v:>12.3}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<40} n={} mean={:.3}",
                h.name,
                h.total,
                h.mean()
            );
            for (i, count) in h.counts.iter().enumerate() {
                let label = match h.bounds.get(i) {
                    Some(b) => format!("<= {b}"),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "    {label:<12} {count:>10}");
            }
        }
    }
    out
}

/// One JSON object with a stable schema (see [`JSON_SCHEMA_VERSION`]).
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {JSON_SCHEMA_VERSION},");

    out.push_str("  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", json_escape(name));
    }
    out.push_str(if snap.counters.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), fmt_f64(*v));
    }
    out.push_str(if snap.gauges.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"name\": \"{}\", \"bounds\": [", json_escape(&h.name));
        for (j, b) in h.bounds.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&fmt_f64(*b));
        }
        out.push_str("], \"counts\": [");
        for (j, c) in h.counts.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "], \"total\": {}, \"sum\": {}}}", h.total, fmt_f64(h.sum));
    }
    out.push_str(if snap.histograms.is_empty() { "],\n" } else { "\n  ],\n" });

    out.push_str("  \"spans\": [");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"path\": \"{}\", \"wall_s\": {}, \"items\": {}, \"items_per_s\": {}}}",
            json_escape(&s.path),
            fmt_f64(s.wall_s),
            s.items,
            fmt_f64(s.items_per_s()),
        );
    }
    out.push_str(if snap.spans.is_empty() { "]\n" } else { "\n  ]\n" });

    out.push_str("}\n");
    out
}

/// `taxitrace_`-prefixed Prometheus text exposition.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    fn sanitize(name: &str) -> String {
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE taxitrace_{n} counter");
        let _ = writeln!(out, "taxitrace_{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE taxitrace_{n} gauge");
        let _ = writeln!(out, "taxitrace_{n} {}", fmt_f64(*v));
    }
    for h in &snap.histograms {
        let n = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE taxitrace_{n} histogram");
        let mut cumulative = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cumulative += count;
            let le = match h.bounds.get(i) {
                Some(b) => fmt_f64(*b),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "taxitrace_{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "taxitrace_{n}_sum {}", fmt_f64(h.sum));
        let _ = writeln!(out, "taxitrace_{n}_count {}", h.total);
    }
    if !snap.spans.is_empty() {
        out.push_str("# TYPE taxitrace_span_seconds gauge\n");
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "taxitrace_span_seconds{{path=\"{}\"}} {}",
                s.path,
                fmt_f64(s.wall_s)
            );
        }
        out.push_str("# TYPE taxitrace_span_items gauge\n");
        for s in &snap.spans {
            let _ = writeln!(out, "taxitrace_span_items{{path=\"{}\"}} {}", s.path, s.items);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("clean.sessions").add(42);
        reg.gauge("exec.workers").set(4.0);
        let h = reg.histogram("exec.worker_tasks", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        reg.record_span("study", 2.0, 0);
        reg.record_span("study/clean", 0.5, 42);
        reg.snapshot()
    }

    #[test]
    fn format_parsing() {
        assert_eq!(MetricsFormat::parse("table"), Some(MetricsFormat::Table));
        assert_eq!(MetricsFormat::parse("json"), Some(MetricsFormat::Json));
        assert_eq!(MetricsFormat::parse("prom"), Some(MetricsFormat::Prometheus));
        assert_eq!(MetricsFormat::parse("xml"), None);
    }

    #[test]
    fn json_contains_all_sections() {
        let json = render_json(&sample());
        for needle in [
            "\"schema\": 6",
            "\"clean.sessions\": 42",
            "\"exec.workers\": 4.000000",
            "\"exec.worker_tasks\"",
            "\"path\": \"study/clean\"",
            "\"items_per_s\": 84.000000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let json = render_json(&MetricsSnapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn prometheus_cumulative_buckets() {
        let prom = render_prometheus(&sample());
        assert!(prom.contains("taxitrace_exec_worker_tasks_bucket{le=\"10.000000\"} 1"));
        assert!(prom.contains("taxitrace_exec_worker_tasks_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("taxitrace_clean_sessions 42"));
        assert!(prom.contains("taxitrace_span_seconds{path=\"study/clean\"} 0.500000"));
    }

    #[test]
    fn table_indents_children() {
        let table = render_table(&sample());
        assert!(table.contains("  study "), "root at depth 0:\n{table}");
        assert!(table.contains("    clean "), "child indented:\n{table}");
        assert!(table.contains("clean.sessions"));
    }
}
