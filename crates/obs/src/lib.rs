//! `taxitrace-obs`: the workspace's observability core.
//!
//! The pipeline's quality rests on knowing *what each stage did to the
//! data* — rule fire counts, funnel drop-offs, gap-fill cache rates,
//! executor balance. This crate gives every layer one vocabulary for
//! those numbers:
//!
//! * [`Registry`] — a lock-cheap metrics registry. Registration takes a
//!   short mutex; increments are single relaxed atomics behind cloned
//!   [`Counter`]/[`Gauge`]/[`Histogram`] handles, so hot loops and worker
//!   threads never contend on a lock.
//! * [`Span`] — hierarchical wall-clock spans (`"study/match_fuse/index"`)
//!   with per-stage item throughput.
//! * [`MetricsSnapshot`] — a deterministic point-in-time copy, rendered by
//!   the sinks in [`sink`]: a human table, stable-schema JSON, or
//!   Prometheus text exposition.
//!
//! Zero dependencies (same vendored-shim discipline as `third_party/`):
//! the JSON sink is hand-rolled with sorted keys and fixed float
//! precision, so it can be golden-file tested and schema-checked in CI.
//!
//! ```
//! use taxitrace_obs::{MetricsFormat, Registry};
//!
//! let reg = Registry::new();
//! reg.counter("clean.sessions").add(17);
//! let mut span = reg.span("study/clean");
//! span.set_items(17);
//! span.finish();
//! let text = taxitrace_obs::render(&reg.snapshot(), MetricsFormat::Table);
//! assert!(text.contains("clean.sessions"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod registry;
mod sink;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, Histogram, Registry, SpanRecord};
pub use sink::{
    render, render_json, render_prometheus, render_table, MetricsFormat,
    JSON_SCHEMA_VERSION,
};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
pub use span::Span;
