//! Golden-file test for the JSON metrics sink: the serialized form of a
//! fixed snapshot must stay byte-identical to the committed golden file.
//! Regenerate deliberately with `BLESS=1 cargo test -p taxitrace-obs`.

use taxitrace_obs::{render_json, Registry};

fn fixed_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("clean.sessions").add(2549);
    reg.counter("clean.rule_fires.rule1").add(1021);
    reg.counter("match.cache_hits").add(740);
    reg.counter("match.cache_misses").add(212);
    reg.counter("exec.tasks").add(7496);
    reg.counter("exec.steals").add(12);
    reg.gauge("exec.workers").set(4.0);
    reg.gauge("match.cache_hit_rate").set(0.7773);
    // Fault-tolerance families (schema v2).
    reg.counter("quarantine.total").add(17);
    reg.counter("quarantine.stage.clean").add(15);
    reg.counter("quarantine.reason.position_jump").add(11);
    reg.counter("quarantine.reason.task_panic").add(4);
    reg.counter("chaos.sessions_faulted").add(13);
    reg.counter("chaos.faults.teleport").add(11);
    reg.counter("exec.task_panics").add(4);
    reg.counter("exec.task_retries").add(2);
    reg.counter("match.gap_budget_exhausted").add(2);
    reg.gauge("quarantine.fraction.clean").set(0.0059);
    // Storage-integrity families (schema v3).
    reg.counter("store.records_total").add(2549);
    reg.counter("store.records_valid").add(2546);
    reg.counter("store.corrupt_records").add(3);
    reg.counter("store.damaged.corrupt_record").add(1);
    reg.counter("store.damaged.torn_tail").add(2);
    reg.counter("quarantine.stage.store").add(3);
    reg.counter("quarantine.reason.corrupt_record").add(1);
    reg.counter("quarantine.reason.torn_tail").add(2);
    // Serving families (schema v4).
    reg.counter("serve.requests_total").add(600);
    reg.counter("serve.requests.od_flow").add(180);
    reg.counter("serve.requests.cell_speed").add(180);
    reg.counter("serve.requests.trip_lookup").add(150);
    reg.counter("serve.requests.grid_stats").add(90);
    reg.counter("serve.errors_total").add(0);
    reg.counter("serve.snapshot_swaps").add(1);
    reg.counter("serve.epoch_refreshes").add(4);
    reg.gauge("serve.workers").set(4.0);
    // Streaming + admission-control families (schema v5).
    reg.counter("stream.records_total").add(37502);
    reg.counter("stream.trips_closed").add(888);
    reg.counter("stream.records_malformed").add(3);
    reg.counter("stream.late_dropped").add(2);
    reg.counter("stream.backpressure_stalls").add(3611);
    reg.counter("stream.checkpoints").add(37);
    reg.counter("stream.resumes").add(1);
    reg.gauge("stream.queue_depth").set(0.0);
    reg.gauge("stream.watermark_lag_s").set(42.0);
    reg.gauge("stream.window.transitions").set(5.0);
    reg.counter("serve.shed_total").add(5);
    reg.gauge("serve.max_inflight").set(8.0);
    // Untrusted-ingestion + header-hardening families (schema v6).
    reg.counter("ingest.records_total").add(37502);
    reg.counter("ingest.records_valid").add(37498);
    reg.counter("ingest.quarantined_total").add(4);
    reg.counter("ingest.damaged.malformed_line").add(2);
    reg.counter("ingest.damaged.numeric_range").add(2);
    reg.counter("ingest.sessions").add(888);
    reg.counter("ingest.map.records_total").add(1547);
    reg.counter("serve.oversize_total").add(1);
    let lat = reg.histogram("serve.latency_us", &[250.0, 1000.0, 5000.0]);
    for v in [120.0, 300.0, 300.0, 2200.0, 9000.0] {
        lat.observe(v);
    }
    let h = reg.histogram("exec.worker_tasks", &[64.0, 256.0, 1024.0]);
    for v in [40.0, 200.0, 200.0, 800.0, 3000.0] {
        h.observe(v);
    }
    // Deterministic span records (a live span would measure wall clock).
    reg.record_span("study", 4.25, 0);
    reg.record_span("study/simulate", 1.5, 2549);
    reg.record_span("study/clean", 0.75, 2549);
    reg.record_span("study/od", 0.5, 4819);
    reg.record_span("study/match_fuse", 1.5, 113);
    reg
}

#[test]
fn json_sink_matches_golden_file() {
    let json = render_json(&fixed_registry().snapshot());
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "golden file missing — run once with BLESS=1 to create it",
    );
    assert_eq!(
        json, golden,
        "JSON sink output drifted from tests/golden/metrics.json; if the\n\
         change is intentional, bump JSON_SCHEMA_VERSION and re-bless"
    );
}
