//! Extracted protocol models of the workspace's shared-state cells.
//!
//! Each function rebuilds one real protocol against the shim ops, with
//! the memory orderings as parameters so the checker can demonstrate
//! both directions: the shipped orderings pass, and any single weakening
//! is caught by a concrete interleaving. The mapping back to source:
//!
//! * [`epoch_publish`] — the lock-free half of
//!   `crates/serve/src/epoch.rs`: `EpochCell::swap` writes the slot and
//!   bumps the epoch with `Release`; `EpochReader::get` polls the epoch
//!   with `Acquire`. The claim under test is exactly the registry's
//!   `acqrel` policy: a reader that observes the bump must also observe
//!   the new snapshot.
//! * [`epoch_cell`] — the full protocol including the mutex-guarded
//!   refresh. This passes *even with both atomics weakened to
//!   `Relaxed`*, because the slot mutex supplies the happens-before
//!   edge on the refresh path — the layered argument in DESIGN.md §14.
//! * [`counter_merge`] — the exec-crate counter pattern
//!   (`crates/exec/src/lib.rs`): workers `fetch_add(Relaxed)`, the
//!   parent joins every worker and then reads an exact total. The join
//!   edge, not the ordering, carries the synchronization.
//! * [`counter_merge_lost_update`] — the known-bad mutant: the same
//!   merge with the RMW split into a load and a store, which the
//!   checker must catch losing an update.

use crate::{MemOrder, Model};

/// Writer publishes a payload then bumps the epoch (`store_ord`); a
/// reader polls the epoch (`load_ord`) and, on observing the bump, must
/// see the payload. Passes for (`Release`, `Acquire`); fails if either
/// side weakens to `Relaxed`.
pub fn epoch_publish(store_ord: MemOrder, load_ord: MemOrder) -> Model {
    let mut m = Model::new("epoch_publish");
    let payload = m.cell("payload", 0);
    let epoch = m.atomic("epoch", 0);
    m.thread("writer", move |t| {
        t.cell_write(payload, 1);
        t.rmw_add(epoch, 1, store_ord);
    });
    m.thread("reader", move |t| {
        let e = t.load(epoch, load_ord);
        if e == 1 {
            let p = t.cell_read(payload);
            t.require(
                p == 1,
                "observed the epoch bump but read a stale payload: the \
                 bump does not happen-before the read",
            );
        }
    });
    m
}

/// The full `EpochCell` protocol: the writer updates the slot and bumps
/// the epoch inside the critical section; the reader, on an epoch
/// mismatch, refreshes *under the slot mutex*. The mutex supplies the
/// happens-before edge, so this passes for any `store_ord`/`load_ord` —
/// including both `Relaxed` — which isolates [`epoch_publish`] as the
/// claim the atomic orderings themselves must carry.
pub fn epoch_cell(store_ord: MemOrder, load_ord: MemOrder) -> Model {
    let mut m = Model::new("epoch_cell");
    let slot = m.cell("slot", 0);
    let epoch = m.atomic("epoch", 0);
    let guard = m.mutex("slot_mutex");
    m.thread("writer", move |t| {
        t.lock(guard);
        t.cell_write(slot, 1);
        t.rmw_add(epoch, 1, store_ord);
        t.unlock(guard);
    });
    m.thread("reader", move |t| {
        let e = t.load(epoch, load_ord);
        if e != 0 {
            // EpochReader::get's refresh path: re-clone under the lock.
            t.lock(guard);
            let v = t.cell_read(slot);
            t.unlock(guard);
            t.require(
                v == 1,
                "refresh under the slot mutex returned a stale snapshot",
            );
        }
    });
    m
}

/// The exec counter merge: two workers each `fetch_add(1, Relaxed)`
/// twice; the parent joins both and requires the exact total. RMW
/// atomicity plus the join edge make this pass in every interleaving.
pub fn counter_merge() -> Model {
    let mut m = Model::new("counter_merge");
    let counter = m.atomic("counter", 0);
    let w1 = m.thread("worker1", move |t| {
        t.rmw_add(counter, 1, MemOrder::Relaxed);
        t.rmw_add(counter, 1, MemOrder::Relaxed);
    });
    let w2 = m.thread("worker2", move |t| {
        t.rmw_add(counter, 1, MemOrder::Relaxed);
        t.rmw_add(counter, 1, MemOrder::Relaxed);
    });
    m.thread("parent", move |t| {
        t.join(w1);
        t.join(w2);
        let total = t.load(counter, MemOrder::Relaxed);
        t.require(total == 4, "joined every worker but the merged count is not exact");
    });
    m
}

/// The known-bad mutant of [`counter_merge`]: each increment is a
/// separate load and store, so two workers can read the same value and
/// one update is lost. The checker must find that interleaving.
pub fn counter_merge_lost_update() -> Model {
    let mut m = Model::new("counter_merge_lost_update");
    let counter = m.atomic("counter", 0);
    let w1 = m.thread("worker1", move |t| {
        let v = t.load(counter, MemOrder::Relaxed);
        t.store(counter, v + 1, MemOrder::Relaxed);
    });
    let w2 = m.thread("worker2", move |t| {
        let v = t.load(counter, MemOrder::Relaxed);
        t.store(counter, v + 1, MemOrder::Relaxed);
    });
    m.thread("parent", move |t| {
        t.join(w1);
        t.join(w2);
        let total = t.load(counter, MemOrder::Relaxed);
        t.require(total == 2, "non-atomic increment lost an update");
    });
    m
}
