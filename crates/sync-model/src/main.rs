//! CI gate for the protocol models: the shipped orderings must pass
//! exhaustive exploration, and every known-bad weakening must be caught
//! with a concrete interleaving. Output is deterministic for a given
//! seed (verify.sh runs it twice and diffs).
//!
//! ```text
//! taxitrace-sync-model [--seed N]
//! ```

use std::process::ExitCode;

use taxitrace_sync_model::{models, Explorer, MemOrder, Model};

struct Check {
    label: &'static str,
    model: Model,
    expect_violation: bool,
}

fn checks() -> Vec<Check> {
    use MemOrder::{Acquire, Relaxed, Release};
    vec![
        Check {
            label: "epoch_publish(Release, Acquire)",
            model: models::epoch_publish(Release, Acquire),
            expect_violation: false,
        },
        Check {
            label: "epoch_cell(Relaxed, Relaxed)",
            model: models::epoch_cell(Relaxed, Relaxed),
            expect_violation: false,
        },
        Check {
            label: "counter_merge",
            model: models::counter_merge(),
            expect_violation: false,
        },
        Check {
            label: "epoch_publish(Relaxed, Acquire)",
            model: models::epoch_publish(Relaxed, Acquire),
            expect_violation: true,
        },
        Check {
            label: "epoch_publish(Release, Relaxed)",
            model: models::epoch_publish(Release, Relaxed),
            expect_violation: true,
        },
        Check {
            label: "counter_merge_lost_update",
            model: models::counter_merge_lost_update(),
            expect_violation: true,
        },
    ]
}

fn parse_seed() -> Result<u64, String> {
    let mut seed = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed expects a number")?;
                seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--help" | "-h" => {
                println!("taxitrace-sync-model [--seed N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(seed)
}

fn main() -> ExitCode {
    let seed = match parse_seed() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("taxitrace-sync-model: {e}");
            return ExitCode::from(2);
        }
    };
    let explorer = Explorer::with_seed(seed);
    println!(
        "sync-model: seed={seed} preemption_bound={} max_schedules={}",
        explorer.preemption_bound, explorer.max_schedules
    );
    let mut mismatches = 0usize;
    let mut ran = 0usize;
    for check in checks() {
        ran += 1;
        let out = explorer.explore(&check.model);
        if out.truncated {
            println!("MISMATCH {}: truncated at {} schedules", check.label, out.schedules);
            mismatches += 1;
            continue;
        }
        match (&out.violation, check.expect_violation) {
            (None, false) => {
                println!("PASS {}: no violation in {} schedules", check.label, out.schedules);
            }
            (Some(v), true) => {
                println!(
                    "CAUGHT {}: violation after {} schedules: {}",
                    check.label, out.schedules, v.message
                );
                for line in &v.trace {
                    println!("    {line}");
                }
            }
            (Some(v), false) => {
                println!("MISMATCH {}: unexpected violation: {}", check.label, v.message);
                for line in &v.trace {
                    println!("    {line}");
                }
                mismatches += 1;
            }
            (None, true) => {
                println!(
                    "MISMATCH {}: weakening NOT caught in {} schedules",
                    check.label, out.schedules
                );
                mismatches += 1;
            }
        }
    }
    println!("sync-model: {}/{ran} checks as expected", ran - mismatches);
    if mismatches > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
