//! `taxitrace-sync-model` — a dependency-free bounded interleaving model
//! checker (a miniature loom) for the workspace's concurrency protocols.
//!
//! The `atomics-audit` lint checks that every atomic carries the ordering
//! its registry entry promises; this crate checks that the promise itself
//! is the right one. Protocols are re-expressed against shim operations
//! ([`ThreadCtx`]) and the [`Explorer`] enumerates every thread
//! interleaving (depth-first, under a preemption budget) *and* every
//! weak-memory read permitted by a vector-clock happens-before model:
//!
//! * Atomic stores tagged `Release`/`AcqRel` carry the writer's clock;
//!   `Acquire` loads that read them join it. A `Relaxed` op carries or
//!   joins nothing — so weakening one end of a Release/Acquire pair
//!   observably deletes the happens-before edge.
//! * A load may read any store the reader has not yet passed (per-thread
//!   coherence) that is not hidden behind a later store that already
//!   happens-before the reader — the set of values a real weak machine
//!   may return.
//! * Non-atomic cells return the latest write that happens-before the
//!   reader: without an edge, the reader sees the *stale* value, which is
//!   exactly the torn read the protocols must exclude.
//!
//! [`models`] holds the extracted protocols (`EpochCell` publication, the
//! exec counter merges); `src/main.rs` is the CI gate that asserts the
//! shipped orderings pass and the known-bad weakenings fail. See
//! DESIGN.md §14 for the happens-before argument this machine checks.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod models;

use std::fmt;
use std::sync::{Condvar, Mutex, PoisonError};

/// Memory ordering of a shimmed atomic operation. Mirrors
/// `std::sync::atomic::Ordering` (with `SeqCst` treated as
/// acquire-and-release; the model has no total-order component, and the
/// registry flags `SeqCst` separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrder {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrder {
    fn acquires(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst)
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOrder::Relaxed => "Relaxed",
            MemOrder::Acquire => "Acquire",
            MemOrder::Release => "Release",
            MemOrder::AcqRel => "AcqRel",
            MemOrder::SeqCst => "SeqCst",
        };
        f.write_str(s)
    }
}

/// Handle to a shimmed atomic variable of a [`Model`].
#[derive(Debug, Clone, Copy)]
pub struct AtomicHandle(usize);

/// Handle to a shimmed non-atomic cell of a [`Model`].
#[derive(Debug, Clone, Copy)]
pub struct CellHandle(usize);

/// Handle to a shimmed mutex of a [`Model`].
#[derive(Debug, Clone, Copy)]
pub struct MutexHandle(usize);

type ThreadBody = Box<dyn Fn(&ThreadCtx<'_>) + Sync>;

struct ThreadSpec {
    name: String,
    body: ThreadBody,
}

impl fmt::Debug for ThreadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadSpec").field("name", &self.name).finish()
    }
}

/// A protocol model: named shared variables plus a fixed set of threads
/// whose bodies speak only through [`ThreadCtx`] operations.
#[derive(Debug)]
pub struct Model {
    name: String,
    atomics: Vec<(String, u64)>,
    cells: Vec<(String, u64)>,
    mutexes: Vec<String>,
    threads: Vec<ThreadSpec>,
}

impl Model {
    pub fn new(name: &str) -> Model {
        Model {
            name: name.to_string(),
            atomics: Vec::new(),
            cells: Vec::new(),
            mutexes: Vec::new(),
            threads: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an atomic variable with an initial value. The initial
    /// value behaves like a release store that happens-before every
    /// thread (variables are created before the threads start).
    pub fn atomic(&mut self, name: &str, init: u64) -> AtomicHandle {
        self.atomics.push((name.to_string(), init));
        AtomicHandle(self.atomics.len() - 1)
    }

    /// Declares a non-atomic cell (the model of plain data the protocol
    /// publishes — a snapshot slot, a result buffer).
    pub fn cell(&mut self, name: &str, init: u64) -> CellHandle {
        self.cells.push((name.to_string(), init));
        CellHandle(self.cells.len() - 1)
    }

    /// Declares a mutex.
    pub fn mutex(&mut self, name: &str) -> MutexHandle {
        self.mutexes.push(name.to_string());
        MutexHandle(self.mutexes.len() - 1)
    }

    /// Adds a thread. Thread ids are assigned in declaration order and
    /// are the targets of [`ThreadCtx::join`].
    pub fn thread(&mut self, name: &str, body: impl Fn(&ThreadCtx<'_>) + Sync + 'static) -> usize {
        self.threads.push(ThreadSpec { name: name.to_string(), body: Box::new(body) });
        self.threads.len() - 1
    }
}

/// One shared-memory operation a model thread can perform. Every variant
/// is a scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Load(usize, MemOrder),
    Store(usize, u64, MemOrder),
    RmwAdd(usize, u64, MemOrder),
    CellRead(usize),
    CellWrite(usize, u64),
    Lock(usize),
    Unlock(usize),
    Join(usize),
}

/// The per-thread face of the scheduler: every method submits one
/// operation and blocks until the explorer grants it.
#[derive(Debug)]
pub struct ThreadCtx<'a> {
    tid: usize,
    central: &'a Central,
}

impl ThreadCtx<'_> {
    /// This thread's id (as assigned by [`Model::thread`]).
    pub fn tid(&self) -> usize {
        self.tid
    }

    pub fn load(&self, a: AtomicHandle, ord: MemOrder) -> u64 {
        self.central.submit(self.tid, Op::Load(a.0, ord))
    }

    pub fn store(&self, a: AtomicHandle, value: u64, ord: MemOrder) {
        self.central.submit(self.tid, Op::Store(a.0, value, ord));
    }

    /// `fetch_add`: returns the previous value.
    pub fn rmw_add(&self, a: AtomicHandle, n: u64, ord: MemOrder) -> u64 {
        self.central.submit(self.tid, Op::RmwAdd(a.0, n, ord))
    }

    pub fn cell_read(&self, c: CellHandle) -> u64 {
        self.central.submit(self.tid, Op::CellRead(c.0))
    }

    pub fn cell_write(&self, c: CellHandle, value: u64) {
        self.central.submit(self.tid, Op::CellWrite(c.0, value));
    }

    pub fn lock(&self, m: MutexHandle) {
        self.central.submit(self.tid, Op::Lock(m.0));
    }

    pub fn unlock(&self, m: MutexHandle) {
        self.central.submit(self.tid, Op::Unlock(m.0));
    }

    /// Blocks until thread `tid` has finished, then joins its final
    /// clock (the happens-before edge a real `JoinHandle::join` gives).
    pub fn join(&self, tid: usize) {
        self.central.submit(self.tid, Op::Join(tid));
    }

    /// Records a violation if `cond` is false. Not a scheduling point:
    /// assertions are thread-local reasoning, not shared-memory traffic.
    pub fn require(&self, cond: bool, message: &str) {
        if !cond {
            self.central.record_violation(self.tid, message);
        }
    }
}

/// A schedule (plus weak-memory read choices) under which a model
/// assertion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub message: String,
    /// The executed operations, oldest first, as human-readable lines.
    pub trace: Vec<String>,
}

/// The result of exploring one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Interleavings fully executed.
    pub schedules: usize,
    /// The first violation found, if any (exploration stops there).
    pub violation: Option<Violation>,
    /// True if `max_schedules` stopped exploration before exhaustion.
    pub truncated: bool,
}

/// Depth-first interleaving enumerator with a preemption budget.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Involuntary context switches allowed per schedule. Switching away
    /// from a thread that could keep running costs one; switching off a
    /// blocked or finished thread is free.
    pub preemption_bound: usize,
    /// Hard cap on schedules explored (`truncated` reports if it bound).
    pub max_schedules: usize,
    /// Rotates every choice's candidate order. Any seed explores the
    /// same set of schedules — only the visit order changes, which is
    /// exactly what the determinism gate wants to demonstrate.
    pub seed: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer { preemption_bound: 3, max_schedules: 200_000, seed: 0 }
    }
}

impl Explorer {
    pub fn with_seed(seed: u64) -> Explorer {
        Explorer { seed, ..Explorer::default() }
    }

    /// Runs every schedule of `model` within the bounds, stopping at the
    /// first violation.
    pub fn explore(&self, model: &Model) -> Outcome {
        let mut stack = ChoiceStack::default();
        let mut schedules = 0usize;
        loop {
            if schedules >= self.max_schedules {
                return Outcome { schedules, violation: None, truncated: true };
            }
            let violation = self.run_once(model, &mut stack);
            schedules += 1;
            if violation.is_some() {
                return Outcome { schedules, violation, truncated: false };
            }
            if !stack.advance() {
                return Outcome { schedules, violation: None, truncated: false };
            }
        }
    }

    /// Executes one full interleaving, driven by (and extending) the
    /// choice stack.
    fn run_once(&self, model: &Model, stack: &mut ChoiceStack) -> Option<Violation> {
        let n = model.threads.len();
        let central = Central::new(model, n);
        std::thread::scope(|scope| {
            for (tid, spec) in model.threads.iter().enumerate() {
                let central = &central;
                scope.spawn(move || {
                    let ctx = ThreadCtx { tid, central };
                    (spec.body)(&ctx);
                    central.finish(tid);
                });
            }
            self.schedule(model, &central, stack);
        });
        let inner = central.inner();
        inner.violation.clone()
    }

    /// The scheduler loop: waits for quiescence (every live thread has
    /// posted its next op), picks an enabled thread, executes its op
    /// against the model state, and grants it.
    fn schedule(&self, model: &Model, central: &Central, stack: &mut ChoiceStack) {
        let mut last: Option<usize> = None;
        let mut preemptions = 0usize;
        loop {
            let mut st = central.wait_quiescent();
            if st.done.iter().all(|&d| d) {
                return;
            }
            let enabled: Vec<usize> = (0..st.done.len())
                .filter(|&t| !st.done[t])
                .filter(|&t| st.pending[t].is_some_and(|op| st.mem.enabled(op, &st.done)))
                .collect();
            if enabled.is_empty() {
                // Every live thread is blocked: a deadlock is a finding in
                // its own right, and also ends the schedule (threads are
                // released so the scope can join them).
                if st.violation.is_none() {
                    st.violation = Some(Violation {
                        message: "deadlock: all live threads blocked".to_string(),
                        trace: st.trace.clone(),
                    });
                }
                central.release_all(st);
                return;
            }
            let choices: Vec<usize> = match last {
                Some(l) if enabled.contains(&l) && preemptions >= self.preemption_bound => {
                    vec![l]
                }
                _ => enabled.clone(),
            };
            let pick = stack.choose(choices.len());
            let tid = choices[(pick + self.seed as usize) % choices.len()];
            if last.is_some_and(|l| l != tid && enabled.contains(&l)) {
                preemptions += 1;
            }
            last = Some(tid);
            let Some(op) = st.pending[tid] else { return };
            let result = st.mem.execute(tid, op, self.seed, stack);
            let entry = format!(
                "t{tid} {}: {} -> {result}",
                model.threads[tid].name,
                st.mem.describe(op, model)
            );
            st.trace.push(entry);
            central.grant(st, tid, result);
        }
    }
}

/// The DFS oracle: a recorded prefix of `(chosen, arity)` decisions.
/// Replaying the prefix and taking the first branch at every new choice
/// point enumerates the tree depth-first without recursion. Choice
/// points with a single alternative are not recorded.
#[derive(Debug, Default)]
struct ChoiceStack {
    decided: Vec<(usize, usize)>,
    cursor: usize,
}

impl ChoiceStack {
    fn choose(&mut self, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        if self.cursor < self.decided.len() {
            let c = self.decided[self.cursor].0;
            self.cursor += 1;
            return c;
        }
        self.decided.push((0, arity));
        self.cursor += 1;
        0
    }

    /// Moves to the next unexplored branch; false when the tree is done.
    fn advance(&mut self) -> bool {
        while let Some((c, n)) = self.decided.pop() {
            if c + 1 < n {
                self.decided.push((c + 1, n));
                self.cursor = 0;
                return true;
            }
        }
        false
    }
}

/// Vector clock: one logical-time component per thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn zero(n: usize) -> VClock {
        VClock(vec![0; n])
    }

    fn tick(&mut self, tid: usize) {
        if let Some(c) = self.0.get_mut(tid) {
            *c += 1;
        }
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self` happens-before-or-equals `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// One store in an atomic's modification history.
#[derive(Debug, Clone)]
struct StoreEv {
    value: u64,
    /// Writer's full clock at the store — bounds which events a reader
    /// can still legally observe (a store that happens-before the reader
    /// hides everything older).
    clock: VClock,
    /// The clock an acquire load synchronizes with: `Some` for release
    /// stores (and for RMWs continuing a release sequence), `None` for
    /// relaxed stores. This distinction *is* the weak-memory model.
    rel: Option<VClock>,
}

#[derive(Debug)]
struct AtomicVar {
    history: Vec<StoreEv>,
    /// Per-thread coherence floor: index of the newest event each thread
    /// has observed.
    seen: Vec<usize>,
}

#[derive(Debug)]
struct CellVar {
    /// `(value, writing clock)` — newest last.
    writes: Vec<(u64, VClock)>,
}

#[derive(Debug)]
struct MutexVar {
    holder: Option<usize>,
    /// Joined by each acquirer: the critical sections' release chain.
    clock: VClock,
}

/// The simulated shared memory plus per-thread clocks.
#[derive(Debug)]
struct ModelState {
    clocks: Vec<VClock>,
    final_clocks: Vec<VClock>,
    atomics: Vec<AtomicVar>,
    cells: Vec<CellVar>,
    mutexes: Vec<MutexVar>,
}

impl ModelState {
    fn new(model: &Model, n: usize) -> ModelState {
        ModelState {
            clocks: vec![VClock::zero(n); n],
            final_clocks: vec![VClock::zero(n); n],
            atomics: model
                .atomics
                .iter()
                .map(|&(_, init)| AtomicVar {
                    // The initial value acts as a release store that
                    // happens-before every thread (clock zero).
                    history: vec![StoreEv {
                        value: init,
                        clock: VClock::zero(n),
                        rel: Some(VClock::zero(n)),
                    }],
                    seen: vec![0; n],
                })
                .collect(),
            cells: model
                .cells
                .iter()
                .map(|&(_, init)| CellVar { writes: vec![(init, VClock::zero(n))] })
                .collect(),
            mutexes: model.mutexes.iter().map(|_| MutexVar { holder: None, clock: VClock::zero(n) }).collect(),
        }
    }

    /// Whether `op` can run now (mutexes block when held, joins block on
    /// unfinished threads; everything else is always enabled).
    fn enabled(&self, op: Op, done: &[bool]) -> bool {
        match op {
            Op::Lock(m) => self.mutexes.get(m).is_some_and(|v| v.holder.is_none()),
            Op::Join(t) => done.get(t).copied().unwrap_or(true),
            _ => true,
        }
    }

    /// Executes `op` for `tid`, resolving weak-memory read choices via
    /// the stack. Returns the op's result value (0 for writes).
    fn execute(&mut self, tid: usize, op: Op, seed: u64, stack: &mut ChoiceStack) -> u64 {
        self.clocks[tid].tick(tid);
        match op {
            Op::Load(a, ord) => {
                let reader = self.clocks[tid].clone();
                let var = &mut self.atomics[a];
                let floor = var.seen[tid];
                // Readable: at or past the coherence floor, and not hidden
                // behind a later store that already happens-before us.
                let readable: Vec<usize> = (floor..var.history.len())
                    .filter(|&i| {
                        !((i + 1)..var.history.len())
                            .any(|j| var.history[j].clock.le(&reader))
                    })
                    .collect();
                let pick = stack.choose(readable.len());
                let idx = readable[(pick + seed as usize) % readable.len()];
                var.seen[tid] = idx;
                let ev = &var.history[idx];
                if ord.acquires() {
                    if let Some(rel) = &ev.rel {
                        self.clocks[tid].join(rel);
                    }
                }
                ev.value
            }
            Op::Store(a, value, ord) => {
                let clock = self.clocks[tid].clone();
                let rel = ord.releases().then(|| clock.clone());
                let var = &mut self.atomics[a];
                var.history.push(StoreEv { value, clock, rel });
                var.seen[tid] = var.history.len() - 1;
                0
            }
            Op::RmwAdd(a, n, ord) => {
                // RMW atomicity: always reads the newest store, and
                // continues that store's release sequence — its own clock
                // joins the sequence only if this RMW itself releases.
                let clock = self.clocks[tid].clone();
                let var = &mut self.atomics[a];
                let latest = var.history.len() - 1;
                let old = var.history[latest].value;
                let prev_rel = var.history[latest].rel.clone();
                if ord.acquires() {
                    if let Some(rel) = &prev_rel {
                        self.clocks[tid].join(rel);
                    }
                }
                let rel = match (prev_rel, ord.releases()) {
                    (Some(mut seq), true) => {
                        seq.join(&clock);
                        Some(seq)
                    }
                    (seq, true) => {
                        let mut own = clock.clone();
                        if let Some(s) = seq {
                            own.join(&s);
                        }
                        Some(own)
                    }
                    (seq, false) => seq,
                };
                var.history.push(StoreEv { value: old.wrapping_add(n), clock: self.clocks[tid].clone(), rel });
                var.seen[tid] = var.history.len() - 1;
                old
            }
            Op::CellRead(c) => {
                // A non-atomic read returns the newest write that
                // happens-before the reader — with no edge, that is the
                // stale value a weak machine is allowed to return.
                let reader = &self.clocks[tid];
                let var = &self.cells[c];
                let mut value = 0;
                for (v, clock) in &var.writes {
                    if clock.le(reader) {
                        value = *v;
                    }
                }
                value
            }
            Op::CellWrite(c, value) => {
                let clock = self.clocks[tid].clone();
                self.cells[c].writes.push((value, clock));
                0
            }
            Op::Lock(m) => {
                let var = &mut self.mutexes[m];
                var.holder = Some(tid);
                let clock = var.clock.clone();
                self.clocks[tid].join(&clock);
                0
            }
            Op::Unlock(m) => {
                let clock = self.clocks[tid].clone();
                let var = &mut self.mutexes[m];
                var.holder = None;
                var.clock.join(&clock);
                0
            }
            Op::Join(t) => {
                let clock = self.final_clocks[t].clone();
                self.clocks[tid].join(&clock);
                0
            }
        }
    }

    fn describe(&self, op: Op, model: &Model) -> String {
        let aname = |i: usize| model.atomics.get(i).map_or("?", |(n, _)| n.as_str());
        let cname = |i: usize| model.cells.get(i).map_or("?", |(n, _)| n.as_str());
        let mname = |i: usize| model.mutexes.get(i).map_or("?", |n| n.as_str());
        match op {
            Op::Load(a, ord) => format!("load({}, {ord})", aname(a)),
            Op::Store(a, v, ord) => format!("store({}, {v}, {ord})", aname(a)),
            Op::RmwAdd(a, n, ord) => format!("rmw_add({}, {n}, {ord})", aname(a)),
            Op::CellRead(c) => format!("cell_read({})", cname(c)),
            Op::CellWrite(c, v) => format!("cell_write({}, {v})", cname(c)),
            Op::Lock(m) => format!("lock({})", mname(m)),
            Op::Unlock(m) => format!("unlock({})", mname(m)),
            Op::Join(t) => format!("join(t{t})"),
        }
    }
}

/// The turnstile between the scheduler and the model threads: threads
/// post one op at a time and block until granted; the scheduler waits
/// until every live thread has posted, then grants exactly one.
#[derive(Debug)]
struct Central {
    state: Mutex<CentralState>,
    cv: Condvar,
}

#[derive(Debug)]
struct CentralState {
    pending: Vec<Option<Op>>,
    granted: Vec<bool>,
    results: Vec<u64>,
    done: Vec<bool>,
    released: bool,
    mem: ModelState,
    trace: Vec<String>,
    violation: Option<Violation>,
}

impl Central {
    fn new(model: &Model, n: usize) -> Central {
        Central {
            state: Mutex::new(CentralState {
                pending: vec![None; n],
                granted: vec![false; n],
                results: vec![0; n],
                done: vec![false; n],
                released: false,
                mem: ModelState::new(model, n),
                trace: Vec::new(),
                violation: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, CentralState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Thread side: posts `op`, blocks until the scheduler grants it,
    /// returns the result.
    fn submit(&self, tid: usize, op: Op) -> u64 {
        let mut st = self.inner();
        st.pending[tid] = Some(op);
        self.cv.notify_all();
        loop {
            if st.released {
                // Deadlock teardown: unblock with a dummy result so the
                // thread can run to completion and the scope can join.
                st.pending[tid] = None;
                return 0;
            }
            if st.granted[tid] {
                st.granted[tid] = false;
                return st.results[tid];
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self, tid: usize) {
        let mut st = self.inner();
        st.done[tid] = true;
        let clock = st.mem.clocks[tid].clone();
        st.mem.final_clocks[tid] = clock;
        self.cv.notify_all();
    }

    fn record_violation(&self, tid: usize, message: &str) {
        let mut st = self.inner();
        if st.violation.is_none() {
            let trace = st.trace.clone();
            st.violation = Some(Violation {
                message: format!("t{tid}: {message}"),
                trace,
            });
        }
    }

    /// Scheduler side: blocks until every thread is done or has a
    /// pending op.
    fn wait_quiescent(&self) -> std::sync::MutexGuard<'_, CentralState> {
        let mut st = self.inner();
        loop {
            let quiescent = (0..st.done.len()).all(|t| st.done[t] || st.pending[t].is_some());
            if quiescent {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn grant(&self, mut st: std::sync::MutexGuard<'_, CentralState>, tid: usize, result: u64) {
        st.pending[tid] = None;
        st.results[tid] = result;
        st.granted[tid] = true;
        drop(st);
        self.cv.notify_all();
    }

    fn release_all(&self, mut st: std::sync::MutexGuard<'_, CentralState>) {
        st.released = true;
        drop(st);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_stack_enumerates_depth_first() {
        let mut s = ChoiceStack::default();
        let mut seen = Vec::new();
        loop {
            let a = s.choose(2);
            let b = s.choose(3);
            seen.push((a, b));
            if !s.advance() {
                break;
            }
        }
        assert_eq!(
            seen,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)],
            "2x3 choice tree enumerated depth-first"
        );
    }

    #[test]
    fn single_alternative_choices_not_recorded() {
        let mut s = ChoiceStack::default();
        assert_eq!(s.choose(1), 0);
        assert!(s.decided.is_empty());
        assert!(!s.advance(), "no real choice points means one schedule");
    }

    #[test]
    fn vclock_join_and_le() {
        let mut a = VClock::zero(3);
        a.tick(0);
        let mut b = VClock::zero(3);
        b.tick(1);
        assert!(!a.le(&b));
        b.join(&a);
        assert!(a.le(&b));
    }

    #[test]
    fn single_thread_model_has_one_schedule() {
        let mut m = Model::new("solo");
        let a = m.atomic("x", 0);
        m.thread("only", move |t| {
            t.store(a, 7, MemOrder::Relaxed);
            let v = t.load(a, MemOrder::Relaxed);
            t.require(v == 7, "own store must be visible to self");
        });
        let out = Explorer::default().explore(&m);
        assert_eq!(out.schedules, 1);
        assert!(out.violation.is_none(), "{:?}", out.violation);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut m = Model::new("deadlock");
        let m1 = m.mutex("m1");
        let m2 = m.mutex("m2");
        m.thread("ab", move |t| {
            t.lock(m1);
            t.lock(m2);
            t.unlock(m2);
            t.unlock(m1);
        });
        m.thread("ba", move |t| {
            t.lock(m2);
            t.lock(m1);
            t.unlock(m1);
            t.unlock(m2);
        });
        let out = Explorer::default().explore(&m);
        let v = out.violation.expect("lock-order inversion must deadlock somewhere");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }
}
