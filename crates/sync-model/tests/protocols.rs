//! Protocol assertions: the shipped orderings survive exhaustive
//! exploration; every single-ordering weakening is provably caught.
//! These are the committed mutation tests the concurrency gate rests on.

use taxitrace_sync_model::{models, Explorer, MemOrder, Outcome};

fn explore(model: &taxitrace_sync_model::Model) -> Outcome {
    Explorer::default().explore(model)
}

#[test]
fn shipped_epoch_orderings_pass_exhaustively() {
    let out = explore(&models::epoch_publish(MemOrder::Release, MemOrder::Acquire));
    assert!(!out.truncated, "exploration must exhaust the schedule space");
    assert!(out.violation.is_none(), "shipped orderings violated: {:?}", out.violation);
    assert!(out.schedules > 1, "a two-thread protocol must have multiple interleavings");
}

#[test]
fn weakening_the_release_store_is_caught() {
    let out = explore(&models::epoch_publish(MemOrder::Relaxed, MemOrder::Acquire));
    let v = out.violation.expect("Relaxed bump must produce a stale read");
    assert!(v.message.contains("stale payload"), "{}", v.message);
    assert!(
        v.trace.iter().any(|l| l.contains("cell_read(payload) -> 0")),
        "trace must show the stale read: {:#?}",
        v.trace
    );
}

#[test]
fn weakening_the_acquire_load_is_caught() {
    let out = explore(&models::epoch_publish(MemOrder::Release, MemOrder::Relaxed));
    let v = out.violation.expect("Relaxed poll must produce a stale read");
    assert!(v.message.contains("stale payload"), "{}", v.message);
}

#[test]
fn seqcst_is_not_weaker_than_the_shipped_protocol() {
    // Sanity: over-synchronizing must not introduce violations (the lint
    // flags it as waste, not the checker).
    let out = explore(&models::epoch_publish(MemOrder::SeqCst, MemOrder::SeqCst));
    assert!(out.violation.is_none(), "{:?}", out.violation);
}

#[test]
fn mutex_refresh_path_is_safe_even_fully_weakened() {
    // The layered claim of DESIGN.md §14: the slot mutex alone protects
    // the refresh path, independent of the epoch's atomic orderings.
    for store in [MemOrder::Relaxed, MemOrder::Release] {
        for load in [MemOrder::Relaxed, MemOrder::Acquire] {
            let out = explore(&models::epoch_cell(store, load));
            assert!(!out.truncated);
            assert!(
                out.violation.is_none(),
                "epoch_cell({store:?}, {load:?}) violated: {:?}",
                out.violation
            );
        }
    }
}

#[test]
fn relaxed_counter_merge_is_exact() {
    let out = explore(&models::counter_merge());
    assert!(!out.truncated);
    assert!(out.violation.is_none(), "{:?}", out.violation);
}

#[test]
fn split_increment_loses_an_update() {
    let out = explore(&models::counter_merge_lost_update());
    let v = out.violation.expect("load-then-store increment must lose an update");
    assert!(v.message.contains("lost an update"), "{}", v.message);
}

#[test]
fn exploration_is_deterministic_for_a_seed() {
    for seed in [0u64, 1, 7] {
        let a = Explorer::with_seed(seed).explore(&models::epoch_publish(
            MemOrder::Relaxed,
            MemOrder::Acquire,
        ));
        let b = Explorer::with_seed(seed).explore(&models::epoch_publish(
            MemOrder::Relaxed,
            MemOrder::Acquire,
        ));
        assert_eq!(a, b, "same seed must reproduce the identical outcome (seed {seed})");
    }
}

#[test]
fn every_seed_reaches_the_same_verdicts() {
    // The seed rotates visit order, not the explored set: verdicts (and
    // exhaustive schedule counts) are seed-independent.
    let base = explore(&models::epoch_publish(MemOrder::Release, MemOrder::Acquire));
    for seed in [1u64, 42, 1_000_003] {
        let out = Explorer::with_seed(seed)
            .explore(&models::epoch_publish(MemOrder::Release, MemOrder::Acquire));
        assert!(out.violation.is_none(), "seed {seed}: {:?}", out.violation);
        assert_eq!(out.schedules, base.schedules, "seed {seed} explored a different set");
        let caught = Explorer::with_seed(seed)
            .explore(&models::epoch_publish(MemOrder::Relaxed, MemOrder::Acquire));
        assert!(caught.violation.is_some(), "seed {seed} missed the weakening");
    }
}
