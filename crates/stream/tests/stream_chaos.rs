//! Live-feed chaos suite: seeded stream faults must produce typed,
//! accounted-for outcomes — a mid-stream kill resumes byte-identically
//! from the stream cursor, a late-data flood blows the stream stage's
//! error budget, malformed records land in quarantine instead of
//! vanishing, and a starved queue applies backpressure without loss.

use std::path::PathBuf;

use taxitrace_core::{Error, FaultPlan, StudyConfig, StudyOutput};
use taxitrace_stream::{run_stream, StreamConfig};

fn config(plan: FaultPlan) -> StudyConfig {
    let mut config = StudyConfig::quick(23);
    config.chaos = Some(plan);
    config
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttstream-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn assert_same_output(a: &StudyOutput, b: &StudyOutput) {
    assert_eq!(a.cleaning, b.cleaning, "cleaning totals diverged");
    assert_eq!(a.segments.len(), b.segments.len(), "segment count diverged");
    for (x, y) in a.segments.iter().zip(&b.segments) {
        assert_eq!(x.points, y.points, "segment points diverged");
    }
    assert_eq!(a.funnel_rows, b.funnel_rows, "funnel diverged");
    assert_eq!(a.transitions, b.transitions, "fused transitions diverged");
    assert_eq!(a.quarantine.entries(), b.quarantine.entries(), "quarantine diverged");
}

#[test]
fn mid_stream_kill_resumes_byte_identically() {
    // Reference run: same seed, kill disabled, no checkpoints.
    let stream_cfg = StreamConfig::default();
    let reference = run_stream(config(FaultPlan::default()), &stream_cfg, None)
        .expect("reference run");
    let total = reference.report.feed.records;
    assert!(total > 200, "need a non-trivial feed, got {total}");

    // Killed run: same data, kill half-way, checkpoint, resume.
    let kill_at = total / 2;
    let plan = FaultPlan { stream_kill_after_records: kill_at, ..FaultPlan::default() };
    let dir = tmp_dir("kill");
    let killed = run_stream(config(plan.clone()), &stream_cfg, Some(&dir));
    match killed {
        Err(Error::InjectedKill { stage }) => {
            assert_eq!(stage, format!("stream@{kill_at}"));
        }
        other => panic!("expected injected kill, got {other:?}"),
    }
    assert!(dir.join("stream.ttck").exists(), "kill must leave a checkpoint");

    let resumed = run_stream(config(plan), &stream_cfg, Some(&dir)).expect("resumed run");
    assert_eq!(resumed.report.resumed_from, Some(kill_at));
    assert_eq!(resumed.report.resumes, 1);
    // Cumulative counters survive the kill: every record is accounted to
    // exactly one of the two processes.
    assert_eq!(resumed.report.records_total, total);

    // The killed-and-resumed output is the uninterrupted output. Not
    // close — identical.
    assert_same_output(&reference.output, &resumed.output);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn periodic_checkpoints_also_resume_identically() {
    let stream_cfg = StreamConfig { checkpoint_every: 500, ..StreamConfig::default() };
    let reference =
        run_stream(config(FaultPlan::default()), &StreamConfig::default(), None)
            .expect("reference run");
    let total = reference.report.feed.records;
    let kill_at = (total / 3).max(1);
    let plan = FaultPlan { stream_kill_after_records: kill_at, ..FaultPlan::default() };
    let dir = tmp_dir("periodic");
    assert!(matches!(
        run_stream(config(plan.clone()), &stream_cfg, Some(&dir)),
        Err(Error::InjectedKill { .. })
    ));
    let resumed = run_stream(config(plan), &stream_cfg, Some(&dir)).expect("resumed run");
    assert!(resumed.report.checkpoints > 1, "periodic checkpoints should have fired");
    assert_same_output(&reference.output, &resumed.output);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn late_flood_blows_the_stream_budget() {
    let plan = FaultPlan {
        stream_late_one_in: 3,
        stream_late_delay_s: 86_400,
        error_budget: Some(0.05),
        ..FaultPlan::default()
    };
    match run_stream(config(plan), &StreamConfig::default(), None) {
        Err(Error::BudgetExceeded { stage, quarantined, total, .. }) => {
            assert_eq!(stage, "stream");
            assert!(quarantined > 0);
            assert!(quarantined as f64 / total as f64 > 0.05);
        }
        other => panic!("expected stream budget blow, got {other:?}"),
    }
}

#[test]
fn malformed_records_are_quarantined_not_dropped() {
    let plan = FaultPlan { stream_garble_one_in: 40, ..FaultPlan::default() };
    let run = run_stream(config(plan), &StreamConfig::default(), None).expect("gabled run");
    assert!(run.report.feed.garbled > 0, "plan should have garbled records");
    assert_eq!(run.report.records_malformed, run.report.feed.garbled);
    // Every malformed or late record has a ledger entry — nothing is
    // silently dropped.
    let stream_entries =
        run.output.quarantine.entries().iter().filter(|e| e.stage == "stream").count() as u64;
    assert_eq!(stream_entries, run.report.records_malformed + run.report.late_dropped);
    // And everything the feed produced was consumed.
    assert_eq!(run.report.records_total, run.report.feed.records);
}

#[test]
fn starved_queue_applies_backpressure_without_loss() {
    let plan = FaultPlan {
        stream_burst_one_in: 10,
        stream_stall_one_in: 400,
        ..FaultPlan::default()
    };
    let stream_cfg = StreamConfig { queue_capacity: 1, ..StreamConfig::default() };
    let run = run_stream(config(plan), &stream_cfg, None).expect("bursty run");
    assert!(run.report.feed.bursts > 0);
    assert!(run.report.feeder_stalls > 0, "stall injection should have fired");
    assert!(
        run.report.backpressure_stalls > 0,
        "a capacity-1 queue must have blocked the feeder at least once"
    );
    // The backpressure contract: blocked, never dropped.
    assert_eq!(run.report.records_total, run.report.feed.records);
    assert_eq!(run.report.late_dropped + run.report.records_malformed, 0);
    // The gauge also counts the record in flight at the feeder and the
    // one just received, so the transient bound is capacity + 2.
    assert!(
        run.report.max_queue_depth <= stream_cfg.queue_capacity as u64 + 2,
        "queue depth {} exceeds bounded capacity",
        run.report.max_queue_depth
    );
}
