//! Adversarial watermark properties: under arbitrary bounded-skew arrival
//! orders — overlapping trips, locally shuffled device timestamps,
//! duplicated records — the watermark machine must never close a trip
//! early (no record becomes late), must collapse duplicates first-wins,
//! and must close trips in the same deterministic sequence every run.

use proptest::prelude::*;
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_stream::{Disposition, WatermarkConfig, WatermarkMachine};
use taxitrace_timebase::Timestamp;
use taxitrace_traces::{PointTruth, RoutePoint, TaxiId, TripId};

const LATENESS_S: i64 = 10;
const IDLE_CLOSE_S: i64 = 100;
/// Base event gap bound. Local shuffles span at most 3 positions, so the
/// worst running-max jump is `3 * MAX_GAP_S = 90 < IDLE_CLOSE_S +
/// LATENESS_S` — the regime the closing rule guarantees losslessness in.
const MAX_GAP_S: i64 = 30;

fn point(trip: u32, ts: i64) -> RoutePoint {
    RoutePoint {
        point_id: 0,
        trip_id: TripId(u64::from(trip)),
        taxi: TaxiId(1),
        geo: GeoPoint { lon: 25.47, lat: 65.01 },
        pos: Point { x: 0.0, y: 0.0 },
        timestamp: Timestamp::from_secs(ts),
        speed_kmh: 0.0,
        heading_deg: 0.0,
        fuel_ml: 0.0,
        truth: PointTruth { seq: 0, element: None },
    }
}

/// One generated trip: a start offset plus bounded inter-event gaps, with
/// the event order locally shuffled (adjacent swaps) to model device
/// timestamps arriving out of order — the §IV-B reordering problem.
#[derive(Debug, Clone)]
struct TripSpec {
    start_s: i64,
    gaps: Vec<i64>,
    swaps: Vec<bool>,
}

fn trip_spec() -> impl Strategy<Value = TripSpec> {
    (
        0i64..200,
        proptest::collection::vec(0i64..MAX_GAP_S + 1, 0..20),
        proptest::collection::vec(proptest::bool::ANY, 0..20),
    )
        .prop_map(|(start_s, gaps, swaps)| TripSpec { start_s, gaps, swaps })
}

/// Event times for a trip in *record order* (possibly non-monotone).
fn events(spec: &TripSpec) -> Vec<i64> {
    let mut ts = spec.start_s;
    let mut out = vec![ts];
    for g in &spec.gaps {
        ts += g;
        out.push(ts);
    }
    // Local shuffle: swap adjacent pairs where the seed says so. Each
    // element moves at most one position, so any running-max jump spans
    // at most three base gaps.
    for (i, swap) in spec.swaps.iter().enumerate() {
        if *swap && i + 1 < out.len() {
            out.swap(i, i + 1);
        }
    }
    out
}

/// The synthesized feed: arrival = within-trip running max of event time,
/// merged across trips by `(arrival, trip, index)` — the same interleave
/// `taxitrace_stream::build_feed` produces.
fn feed(trips: &[TripSpec]) -> Vec<(u32, u32, i64)> {
    let mut records = Vec::new();
    for (si, spec) in trips.iter().enumerate() {
        let mut frontier = i64::MIN;
        for (pi, ts) in events(spec).into_iter().enumerate() {
            frontier = frontier.max(ts);
            records.push((si as u32, pi as u32, ts, frontier));
        }
    }
    records.sort_by_key(|&(si, pi, _, arrival)| (arrival, si, pi));
    records.into_iter().map(|(si, pi, ts, _)| (si, pi, ts)).collect()
}

fn machine() -> WatermarkMachine {
    WatermarkMachine::new(WatermarkConfig {
        lateness_s: LATENESS_S,
        idle_close_s: IDLE_CLOSE_S,
    })
}

/// Runs a feed through a fresh machine, re-offering duplicates where the
/// mask says so. Returns (dispositions, close sequence).
fn run(
    feed: &[(u32, u32, i64)],
    dup_mask: &[bool],
) -> (Vec<Disposition>, Vec<(u32, usize)>) {
    let mut m = machine();
    let mut dispositions = Vec::new();
    let mut closes = Vec::new();
    for (i, &(si, pi, ts)) in feed.iter().enumerate() {
        dispositions.push(m.offer(si, pi, ts, point(si, ts)));
        if dup_mask.get(i).copied().unwrap_or(false) {
            dispositions.push(m.offer(si, pi, ts, point(si, ts)));
        }
        for buf in m.drain_closable() {
            closes.push((buf.session_index, buf.points.len()));
        }
    }
    for buf in m.flush() {
        closes.push((buf.session_index, buf.points.len()));
    }
    (dispositions, closes)
}

proptest! {
    /// Bounded skew ⇒ lossless: no arrival interleave of overlapping,
    /// locally-shuffled trips may ever strand a record past the
    /// watermark, and duplicates must collapse without side effects.
    #[test]
    fn bounded_skew_never_closes_early(
        trips in proptest::collection::vec(trip_spec(), 1..6),
        dups in proptest::collection::vec(proptest::bool::ANY, 0..64),
    ) {
        let feed = feed(&trips);
        let (dispositions, closes) = run(&feed, &dups);

        let mut originals = 0usize;
        for d in &dispositions {
            prop_assert!(
                *d != Disposition::LatePastWatermark,
                "bounded-skew record fell past the watermark"
            );
            if *d == Disposition::Buffered {
                originals += 1;
            }
        }
        prop_assert_eq!(originals, feed.len(), "every original record must buffer");

        // Every trip closes exactly once, with its full point count.
        prop_assert_eq!(closes.len(), trips.len());
        let mut seen = vec![false; trips.len()];
        for (si, n_points) in &closes {
            let si = *si as usize;
            prop_assert!(!seen[si], "trip closed twice");
            seen[si] = true;
            prop_assert_eq!(*n_points, events(&trips[si]).len(), "points lost or duplicated");
        }
    }

    /// Determinism: the same feed and duplicate mask produce the same
    /// disposition sequence and the same close order, every time.
    #[test]
    fn close_sequence_is_deterministic(
        trips in proptest::collection::vec(trip_spec(), 1..6),
        dups in proptest::collection::vec(proptest::bool::ANY, 0..64),
    ) {
        let feed = feed(&trips);
        let (d1, c1) = run(&feed, &dups);
        let (d2, c2) = run(&feed, &dups);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(c1, c2);
    }
}
