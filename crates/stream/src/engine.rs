//! The streaming ingest engine.
//!
//! One feeder thread pushes the arrival-ordered feed through a bounded
//! queue; the processor thread runs the watermark machine, cleans each
//! trip the moment it closes, map-matches its transitions into the
//! sliding window, and checkpoints the stream cursor. At end of stream
//! the accumulated per-session products are assembled through the
//! *unchanged* batch stages (`assemble_cleaned → analyze_od →
//! match_fuse`), which is what makes stream-end output byte-identical to
//! `Study::run` on the same seed — parity by construction, pinned by
//! `tests/stream_parity.rs`.
//!
//! Backpressure contract: when the queue is full the feeder **blocks**
//! (counting `stream.backpressure_stalls`); records are never dropped to
//! shed load. The only records that leave the pipeline early are
//! malformed or late-past-watermark ones, and both land in the
//! quarantine ledger under the `stream` stage's error budget.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::thread;

use taxitrace_cleaning::{clean_session, session_anomaly, CleaningTotals, TripSegment};
use taxitrace_core::{
    check_budget, fuse_transition, resolved_fault_policy, resolved_matching_config,
    transition_anomaly, Error, Quarantine, QuarantineEntry, QuarantineReason, Study, StudyConfig,
};
use taxitrace_matching::{CandidateIndex, MatchScratch};
use taxitrace_od::OdAnalyzer;
use taxitrace_traces::{RawTrip, RoutePoint};

use crate::checkpoint::{
    load_stream_checkpoint, save_stream_checkpoint, stream_fingerprint, SessionProducts,
    StreamState, STREAM_CHECKPOINT_FILE,
};
use crate::feed::{build_feed, FLAG_BURST, FLAG_STALL};
use crate::metrics::StreamMetrics;
use crate::watermark::{Disposition, TripBuffer, WatermarkConfig, WatermarkMachine};
use crate::window::SlidingWindow;
use crate::{StreamConfig, StreamReport, StreamRun};

/// How long an injected feeder stall pauses. Affects liveness metrics
/// only — never the data.
const STALL_PAUSE: std::time::Duration = std::time::Duration::from_millis(2);

/// Runs the study as a stream. See [`crate::run_stream`].
pub fn run_stream(
    config: StudyConfig,
    stream_cfg: &StreamConfig,
    checkpoint_dir: Option<&Path>,
) -> Result<StreamRun, Error> {
    stream_cfg.validate().map_err(Error::Pipeline)?;
    let sim = Study::new(config).simulate()?;
    let registry = sim.registry().clone();
    let metrics = StreamMetrics::new(&registry);
    let mut span = registry.span("study/stream");

    let plan = sim.config.chaos.clone();
    let (feed, feed_stats) = build_feed(sim.store.sessions(), plan.as_ref());
    let feed_len = feed.len() as u64;

    // Resume from a stream-cursor checkpoint when one matches both
    // configs; otherwise start from record zero.
    let fingerprint = stream_fingerprint(&sim.config, stream_cfg);
    let ck_path = checkpoint_dir.map(|d| d.join(STREAM_CHECKPOINT_FILE));
    let mut state = StreamState::default();
    let mut resumed_from = None;
    if let Some(path) = &ck_path {
        if let Some((loaded, counters)) = load_stream_checkpoint(path, fingerprint) {
            for (name, value) in &counters {
                metrics.restore(name, *value);
            }
            resumed_from = Some(loaded.cursor);
            state = loaded;
            metrics.resumes.inc();
        }
    }
    let cursor_start = state.cursor;

    // Bounded ingest queue. The feeder owns the feed; the processor owns
    // everything else.
    let queue_depth = Arc::new(AtomicU64::new(0));
    let (tx, rx) = sync_channel::<crate::feed::FeedRecord>(stream_cfg.queue_capacity);
    let feeder = {
        let metrics = metrics.clone();
        let depth = Arc::clone(&queue_depth);
        thread::Builder::new()
            .name("stream-feeder".into())
            .spawn(move || {
                for (i, record) in feed.into_iter().enumerate() {
                    let live = (i as u64) >= cursor_start;
                    if live && record.flags & FLAG_STALL != 0 {
                        metrics.feeder_stalls.inc();
                        thread::sleep(STALL_PAUSE);
                    }
                    // sync(queue_depth): incremented before send, decremented
                    // by the processor after recv; pure gauge bookkeeping, so
                    // Relaxed is enough and transient over-count is fine.
                    depth.fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(record) {
                        Ok(()) => {}
                        Err(TrySendError::Full(record)) => {
                            if live {
                                metrics.backpressure_stalls.inc();
                            }
                            if tx.send(record).is_err() {
                                // sync(queue_depth): undo — the record never
                                // entered the queue.
                                depth.fetch_sub(1, Ordering::Relaxed);
                                return;
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            // sync(queue_depth): undo, as above.
                            depth.fetch_sub(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
            .map_err(|e| Error::Pipeline(format!("spawn stream feeder: {e}")))?
    };

    // Stage-4 working set for *live* incremental matching. Its products
    // feed the sliding window only; the authoritative tables are
    // recomputed by the batch stages at assembly.
    let analyzer = OdAnalyzer::from_city(&sim.city);
    let index = CandidateIndex::new(&sim.city.graph, &sim.city.elements);
    let mut scratch = MatchScratch::new();
    let matching_config = resolved_matching_config(&sim.config);
    let (error_budget, max_attempts) = resolved_fault_policy(&sim.config);
    let panic_one_in = plan.as_ref().map(|p| p.task_panic_one_in).unwrap_or(0);
    let kill_after = plan.as_ref().map(|p| p.stream_kill_after_records).unwrap_or(0);

    let mut machine = WatermarkMachine::new(WatermarkConfig {
        lateness_s: stream_cfg.lateness_s,
        idle_close_s: stream_cfg.idle_close_s,
    });
    let mut window = SlidingWindow::new(stream_cfg.window_s);
    let mut max_depth: u64 = 0;
    let mut next_index: u64 = 0;

    while let Ok(record) = rx.recv() {
        let i = next_index;
        next_index += 1;
        // sync(queue_depth): consumer side of the feeder's increment.
        let depth_before = queue_depth.fetch_sub(1, Ordering::Relaxed);
        let live = i >= cursor_start;
        if live {
            metrics.records_total.inc();
            metrics.queue_depth.set(depth_before.saturating_sub(1) as f64);
            max_depth = max_depth.max(depth_before);
            if record.flags & FLAG_BURST != 0 {
                metrics.bursts.inc();
            }
        }

        let trip_id = record.point.trip_id.0;
        let point_id = record.point.point_id;
        if is_malformed(&record.point) {
            if live {
                metrics.records_malformed.inc();
                state.stream_quarantine.push(QuarantineEntry {
                    stage: "stream".into(),
                    record: trip_id,
                    reason: QuarantineReason::MalformedRecord,
                    detail: format!(
                        "non-finite position at point {point_id} (feed record #{i})"
                    ),
                });
            }
        } else {
            let event_s = record.point.timestamp.secs();
            let disposition =
                machine.offer(record.session_index, record.point_index, event_s, record.point);
            if disposition == Disposition::LatePastWatermark && live {
                metrics.late_dropped.inc();
                state.stream_quarantine.push(QuarantineEntry {
                    stage: "stream".into(),
                    record: trip_id,
                    reason: QuarantineReason::LatePastWatermark,
                    detail: format!(
                        "arrived after trip {trip_id} closed past the watermark \
                         (feed record #{i})"
                    ),
                });
            }
            for buffer in machine.drain_closable() {
                if live {
                    close_trip(
                        buffer,
                        sim.store.sessions(),
                        &sim,
                        &analyzer,
                        &index,
                        &mut scratch,
                        &matching_config,
                        panic_one_in,
                        max_attempts,
                        &mut state,
                        &mut window,
                        &metrics,
                    );
                }
                // Catch-up closes are discarded: their products were
                // restored from the checkpoint.
            }
        }

        if live {
            metrics.watermark_lag_s.set(machine.lag_s() as f64);
            if let Some(frontier) = machine.frontier_s() {
                window.advance(frontier, &metrics);
            }
            state.cursor = i + 1;
            if let Some(path) = &ck_path {
                let periodic = stream_cfg.checkpoint_every > 0
                    && state.cursor % stream_cfg.checkpoint_every == 0
                    && state.cursor < feed_len;
                if periodic {
                    metrics.checkpoints.inc();
                    save_stream_checkpoint(path, fingerprint, &state, &metrics)?;
                }
            }
            if kill_after > 0 && state.cursor == kill_after {
                if let Some(path) = &ck_path {
                    metrics.checkpoints.inc();
                    save_stream_checkpoint(path, fingerprint, &state, &metrics)?;
                }
                drop(rx);
                let _ = feeder.join();
                return Err(Error::InjectedKill { stage: format!("stream@{}", state.cursor) });
            }
        }
    }
    let _ = feeder.join();
    metrics.queue_depth.set(0.0);

    // End of stream: every still-open trip closes now. All of these are
    // live — a killed run never reaches its flush.
    for buffer in machine.flush() {
        close_trip(
            buffer,
            sim.store.sessions(),
            &sim,
            &analyzer,
            &index,
            &mut scratch,
            &matching_config,
            panic_one_in,
            max_attempts,
            &mut state,
            &mut window,
            &metrics,
        );
    }
    metrics.watermark_lag_s.set(0.0);
    state.cursor = feed_len;

    // Stream-stage accounting: same ledger surface and budget law as
    // every batch stage.
    let mut stream_ledger = Quarantine::default();
    for entry in &state.stream_quarantine {
        stream_ledger.push(entry.clone());
    }
    stream_ledger.record_stage_metrics(&registry, "stream", feed_len as usize);
    check_budget("stream", state.stream_quarantine.len(), feed_len as usize, error_budget)?;

    span.set_items(feed_len);
    span.finish();

    // Assemble per-session products in session-index order and hand the
    // rest of the pipeline to the unchanged batch stages.
    let session_count = sim.store.sessions().len();
    let mut segments: Vec<TripSegment> = Vec::new();
    let mut stage_quarantine: Vec<QuarantineEntry> = Vec::new();
    for si in 0..session_count as u32 {
        let products = match state.closed.remove(&si) {
            Some(products) => products,
            // A session none of whose records survived the feed (every
            // point garbled): clean its empty reassembly so session
            // totals stay aligned with the batch shape.
            None => clean_one(
                &rebuild_session(&sim.store.sessions()[si as usize], Vec::new()),
                &sim.config,
                panic_one_in,
                max_attempts,
                &mut state.totals,
            ),
        };
        segments.extend(products.segments);
        if let Some(entry) = products.quarantine {
            stage_quarantine.push(entry);
        }
    }
    stage_quarantine.append(&mut state.stream_quarantine);

    let report = StreamReport {
        feed: feed_stats,
        records_total: metrics.records_total.get(),
        records_malformed: metrics.records_malformed.get(),
        late_dropped: metrics.late_dropped.get(),
        trips_closed: metrics.trips_closed.get(),
        backpressure_stalls: metrics.backpressure_stalls.get(),
        feeder_stalls: metrics.feeder_stalls.get(),
        checkpoints: metrics.checkpoints.get(),
        resumes: metrics.resumes.get(),
        resumed_from,
        max_queue_depth: max_depth,
        window_peak_transitions: window.peak() as u64,
    };

    let output = sim
        .assemble_cleaned(segments, state.totals, stage_quarantine)?
        .analyze_od()?
        .match_fuse()?;
    Ok(StreamRun { output, report })
}

fn is_malformed(point: &RoutePoint) -> bool {
    !point.pos.x.is_finite()
        || !point.pos.y.is_finite()
        || !point.geo.lon.is_finite()
        || !point.geo.lat.is_finite()
}

/// Rebuilds a session from its reassembled points. On a healthy feed the
/// reassembly is the original point list, so the result is field-for-field
/// identical to the stored session; on a lossy feed (chaos) the device
/// summary is resynced the same way the batch trace-fault path does.
fn rebuild_session(original: &RawTrip, points: Vec<RoutePoint>) -> RawTrip {
    let mut session = RawTrip {
        id: original.id,
        taxi: original.taxi,
        start_time: original.start_time,
        end_time: original.end_time,
        points,
        total_time: original.total_time,
        total_distance_m: original.total_distance_m,
        total_fuel_ml: original.total_fuel_ml,
        truth_trips: original.truth_trips.clone(),
    };
    if session.points.len() != original.points.len() {
        if let Some(max_ts) = session.points.iter().map(|p| p.timestamp).max() {
            session.end_time = max_ts;
            session.total_time = max_ts.since(session.start_time);
        }
    }
    session
}

/// Replicates the batch clean task for one session: same panic injection,
/// same anomaly check, same quarantine entry shape (including the retry
/// suffix the executor would add). Quarantined sessions contribute no
/// segments and no totals — exactly like a failed batch task slot.
fn clean_one(
    session: &RawTrip,
    config: &StudyConfig,
    panic_one_in: u64,
    max_attempts: u32,
    totals: &mut CleaningTotals,
) -> SessionProducts {
    if panic_one_in > 0 && session.id.0.is_multiple_of(panic_one_in) {
        return SessionProducts {
            segments: Vec::new(),
            quarantine: Some(QuarantineEntry {
                stage: "clean".into(),
                record: session.id.0,
                reason: QuarantineReason::TaskPanic,
                detail: format!("chaos: injected clean-task panic (trip {})", session.id.0),
            }),
        };
    }
    let cleaned = clean_session(session, &config.cleaning);
    match session_anomaly(&cleaned, &config.fault.anomaly) {
        Some((kind, detail)) => SessionProducts {
            segments: Vec::new(),
            quarantine: Some(QuarantineEntry {
                stage: "clean".into(),
                record: session.id.0,
                reason: kind.into(),
                detail: if max_attempts > 1 {
                    format!("{detail} (after {max_attempts} attempts)")
                } else {
                    detail
                },
            }),
        },
        None => {
            totals.absorb(&cleaned.stats);
            SessionProducts { segments: cleaned.segments, quarantine: None }
        }
    }
}

/// Processes one watermark-closed trip: incremental clean, then live O-D
/// extraction and map-matching into the sliding window.
#[allow(clippy::too_many_arguments)] // the live stage-2..4 working set
fn close_trip(
    buffer: TripBuffer,
    sessions: &[RawTrip],
    sim: &taxitrace_core::Simulated,
    analyzer: &OdAnalyzer,
    index: &CandidateIndex,
    scratch: &mut MatchScratch,
    matching_config: &taxitrace_matching::MatchConfig,
    panic_one_in: u64,
    max_attempts: u32,
    state: &mut StreamState,
    window: &mut SlidingWindow,
    metrics: &StreamMetrics,
) {
    let si = buffer.session_index;
    let last_event_s = buffer.last_event_s;
    let points: Vec<RoutePoint> = buffer.points.into_values().collect();
    let session = rebuild_session(&sessions[si as usize], points);
    let products = clean_one(&session, &sim.config, panic_one_in, max_attempts, &mut state.totals);
    metrics.trips_closed.inc();

    if products.quarantine.is_none() && !products.segments.is_empty() {
        // Live incremental matching: feeds the window, then is discarded
        // — the batch stages recompute it over the full segment set.
        for t in analyzer.transitions(&products.segments) {
            if !t.post_filtered {
                continue;
            }
            let seg = &products.segments[t.segment_index];
            if transition_anomaly(seg, &t).is_some() {
                continue;
            }
            let (record, _) = fuse_transition(
                &sim.city,
                &sim.weather,
                &sim.config,
                matching_config,
                index,
                scratch,
                seg,
                &t,
            );
            window.push(last_event_s, record.pair, metrics);
        }
    }
    state.closed.insert(si, products);
}
