//! Arrival-ordered feed synthesis.
//!
//! The batch study reads whole sessions from the store; a live deployment
//! sees individual route points in *server arrival order*, interleaved
//! across every taxi that is currently driving. This module reconstructs
//! that view from the simulated store: each point gets an arrival
//! timestamp (the running maximum of event timestamps within its session
//! — the server clock never runs backwards even when device timestamps
//! do, which is exactly the §IV-B reordering problem), and the whole
//! fleet's points are then interleaved by arrival time.
//!
//! Chaos stream faults from [`FaultPlan`] mutate the feed
//! deterministically per record index (seeded off `FaultPlan::stream_rng`),
//! so a killed-and-resumed run replays the identical feed:
//!
//! * **late**: arrival is delayed by `stream_late_delay_s` — the record
//!   shows up long after its trip closed and must land in quarantine,
//!   never silently vanish;
//! * **burst**: arrival is quantized down to a coarse boundary, so many
//!   records hit the ingest queue in the same instant (backpressure test);
//! * **garble**: the position becomes non-finite (a malformed record);
//! * **stall**: the feeder thread pauses on this record (liveness test —
//!   no data is changed).

use taxitrace_traces::{FaultPlan, RawTrip, RoutePoint};

/// Record was injected late by the chaos plan.
pub const FLAG_LATE: u8 = 1 << 0;
/// Record is part of an injected arrival burst.
pub const FLAG_BURST: u8 = 1 << 1;
/// Record's position was garbled to non-finite values.
pub const FLAG_GARBLED: u8 = 1 << 2;
/// The feeder should stall briefly before sending this record.
pub const FLAG_STALL: u8 = 1 << 3;

/// Burst quantization boundary, seconds: all records inside one boundary
/// window arrive "at once".
const BURST_QUANTUM_S: i64 = 300;

/// One route point as the ingest queue sees it.
#[derive(Debug, Clone)]
pub struct FeedRecord {
    /// Index of the originating session in store order.
    pub session_index: u32,
    /// Index of the point within the session's arrival-ordered point list.
    pub point_index: u32,
    /// Synthesized server arrival time, Unix seconds.
    pub arrival_s: i64,
    /// Chaos flags (`FLAG_*`), zero on a healthy feed.
    pub flags: u8,
    pub point: RoutePoint,
}

/// What the chaos plan did to the feed, for the stream report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedStats {
    pub records: u64,
    pub late_injected: u64,
    pub bursts: u64,
    pub garbled: u64,
    pub stalls: u64,
}

/// Builds the arrival-ordered feed for a simulated fleet.
///
/// Deterministic for a fixed session list and plan: chaos draws are keyed
/// by the record's position in session-major enumeration order, and the
/// final interleave is a stable sort on `(arrival_s, session, point)`.
pub fn build_feed(sessions: &[RawTrip], plan: Option<&FaultPlan>) -> (Vec<FeedRecord>, FeedStats) {
    let mut stats = FeedStats::default();
    let total: usize = sessions.iter().map(|s| s.points.len()).sum();
    let mut feed = Vec::with_capacity(total);
    let faulting_plan = plan.filter(|p| p.has_stream_faults());
    let mut record_index: u64 = 0;
    for (si, session) in sessions.iter().enumerate() {
        let mut frontier = i64::MIN;
        for (pi, point) in session.points.iter().enumerate() {
            frontier = frontier.max(point.timestamp.secs());
            let mut record = FeedRecord {
                session_index: si as u32,
                point_index: pi as u32,
                arrival_s: frontier,
                flags: 0,
                point: *point,
            };
            if let Some(plan) = faulting_plan {
                apply_stream_faults(plan, record_index, &mut record, &mut stats);
            }
            feed.push(record);
            record_index += 1;
        }
    }
    stats.records = feed.len() as u64;
    // Stable: records sharing an arrival instant (bursts) keep
    // session-major order, so replays are byte-identical.
    feed.sort_by_key(|r| (r.arrival_s, r.session_index, r.point_index));
    (feed, stats)
}

/// Applies at most one stream fault to a record, drawn deterministically
/// from the plan's per-record rng. Faults are mutually exclusive in a
/// fixed precedence (garble > late > burst > stall) so each record's fate
/// is a pure function of `(plan, record_index)`.
fn apply_stream_faults(
    plan: &FaultPlan,
    record_index: u64,
    record: &mut FeedRecord,
    stats: &mut FeedStats,
) {
    let mut rng = plan.stream_rng(record_index);
    if one_in(plan.stream_garble_one_in, &mut rng) {
        record.flags |= FLAG_GARBLED;
        record.point.pos.x = f64::NAN;
        record.point.geo.lon = f64::NAN;
        stats.garbled += 1;
    } else if one_in(plan.stream_late_one_in, &mut rng) {
        record.flags |= FLAG_LATE;
        record.arrival_s = record.arrival_s.saturating_add(plan.stream_late_delay_s);
        stats.late_injected += 1;
    } else if one_in(plan.stream_burst_one_in, &mut rng) {
        record.flags |= FLAG_BURST;
        // Floor to the boundary: monotone, so within-trip arrival order
        // (and therefore queue order) is preserved.
        record.arrival_s -= record.arrival_s.rem_euclid(BURST_QUANTUM_S);
        stats.bursts += 1;
    } else if one_in(plan.stream_stall_one_in, &mut rng) {
        record.flags |= FLAG_STALL;
        stats.stalls += 1;
    }
}

fn one_in(n: u64, rng: &mut taxitrace_traces::Rng) -> bool {
    n > 0 && rng.below(n as usize) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_core::{Study, StudyConfig};

    fn sessions() -> Vec<RawTrip> {
        let sim = Study::new(StudyConfig::quick(11)).simulate().expect("simulate");
        sim.store.sessions().to_vec()
    }

    #[test]
    fn healthy_feed_is_sorted_and_complete() {
        let sessions = sessions();
        let total: usize = sessions.iter().map(|s| s.points.len()).sum();
        let (feed, stats) = build_feed(&sessions, None);
        assert_eq!(feed.len(), total);
        assert_eq!(stats.records, total as u64);
        assert_eq!(stats.garbled + stats.late_injected + stats.bursts + stats.stalls, 0);
        for w in feed.windows(2) {
            assert!(
                (w[0].arrival_s, w[0].session_index, w[0].point_index)
                    < (w[1].arrival_s, w[1].session_index, w[1].point_index),
                "feed must be strictly ordered"
            );
        }
        // Arrival never precedes the event it carries.
        for r in &feed {
            assert!(r.arrival_s >= r.point.timestamp.secs());
        }
    }

    #[test]
    fn within_session_arrival_order_matches_point_order() {
        let sessions = sessions();
        let (feed, _) = build_feed(&sessions, None);
        let mut last_pi = vec![None; sessions.len()];
        for r in &feed {
            let slot = &mut last_pi[r.session_index as usize];
            if let Some(prev) = *slot {
                assert!(r.point_index > prev, "session points must arrive in order");
            }
            *slot = Some(r.point_index);
        }
    }

    #[test]
    fn stream_faults_are_deterministic() {
        let sessions = sessions();
        let mut plan = FaultPlan { seed: 5, ..FaultPlan::default() };
        plan.stream_garble_one_in = 97;
        plan.stream_late_one_in = 101;
        plan.stream_burst_one_in = 53;
        let (a, sa) = build_feed(&sessions, Some(&plan));
        let (b, sb) = build_feed(&sessions, Some(&plan));
        assert_eq!(sa, sb);
        assert!(sa.garbled > 0 && sa.late_injected > 0 && sa.bursts > 0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.session_index, x.point_index, x.arrival_s, x.flags), (
                y.session_index,
                y.point_index,
                y.arrival_s,
                y.flags
            ));
        }
    }
}
