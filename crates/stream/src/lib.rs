//! `taxitrace-stream`: streaming ingest for the taxi-trace study.
//!
//! The batch pipeline (`taxitrace-core`) reads complete sessions out of
//! the store. This crate replays the same data the way a live server
//! would see it — individual route points in arrival order, interleaved
//! across the fleet — through a bounded queue with explicit
//! backpressure, closes trips against an event-time watermark, cleans
//! and map-matches each trip the moment it closes, and keeps a sliding
//! window of O-D statistics while the stream runs.
//!
//! The headline property is **batch parity**: at end of stream the
//! accumulated per-session products are assembled through the unchanged
//! batch stages, so [`run_stream`] returns a [`StudyOutput`] that is
//! byte-identical to `Study::run` on the same seed (pinned by
//! `tests/stream_parity.rs`). Robustness properties ride on top:
//!
//! * late-past-watermark and malformed records land in the quarantine
//!   ledger under the `stream` stage's error budget — never a silent
//!   drop;
//! * a full queue blocks the feeder (typed backpressure, counted by
//!   `stream.backpressure_stalls`);
//! * the stream cursor checkpoints into a TTCK container, so a
//!   mid-stream kill resumes byte-identically;
//! * `FaultPlan` gains seeded stream faults (mid-stream kill, late-data
//!   flood, burst arrival, feeder stall) for the chaos suite.
//!
//! ```no_run
//! use taxitrace_core::StudyConfig;
//! use taxitrace_stream::{run_stream, StreamConfig};
//!
//! let config = StudyConfig::quick(7);
//! let run = run_stream(config, &StreamConfig::default(), None).expect("stream");
//! assert_eq!(run.report.late_dropped, 0);
//! let table3 = run.output.funnel();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod checkpoint;
mod engine;
mod feed;
mod metrics;
mod watermark;
mod window;

use std::path::Path;

use taxitrace_core::{Error, StudyConfig, StudyOutput};

pub use checkpoint::{
    load_stream_checkpoint, save_stream_checkpoint, stream_fingerprint, SessionProducts,
    StreamState, STREAM_CHECKPOINT_FILE,
};
pub use feed::{build_feed, FeedRecord, FeedStats, FLAG_BURST, FLAG_GARBLED, FLAG_LATE, FLAG_STALL};
pub use metrics::StreamMetrics;
pub use watermark::{Disposition, TripBuffer, WatermarkConfig, WatermarkMachine};
pub use window::SlidingWindow;

/// Streaming ingest knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// How far the event-time watermark trails the frontier, seconds.
    /// Larger values tolerate more arrival skew before declaring a
    /// record late.
    pub lateness_s: i64,
    /// Idle gap after a trip's last event before the watermark may close
    /// it, seconds. Must exceed the worst in-trip silent gap (the
    /// simulator caps those at 1400 s) or healthy trips close early.
    pub idle_close_s: i64,
    /// Bounded ingest queue capacity, records. A full queue blocks the
    /// feeder — backpressure, not loss.
    pub queue_capacity: usize,
    /// Sliding statistics window over event time, seconds.
    pub window_s: i64,
    /// Write a stream-cursor checkpoint every N records (0 disables
    /// periodic checkpoints; an injected kill always writes one).
    pub checkpoint_every: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            lateness_s: 300,
            idle_close_s: 3600,
            queue_capacity: 1024,
            window_s: 3600,
            checkpoint_every: 0,
        }
    }
}

impl StreamConfig {
    /// Validates the knobs; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.lateness_s < 0 {
            return Err(format!("stream lateness_s must be >= 0, got {}", self.lateness_s));
        }
        if self.idle_close_s <= 0 {
            return Err(format!("stream idle_close_s must be > 0, got {}", self.idle_close_s));
        }
        if self.queue_capacity == 0 {
            return Err("stream queue_capacity must be >= 1".into());
        }
        if self.window_s <= 0 {
            return Err(format!("stream window_s must be > 0, got {}", self.window_s));
        }
        Ok(())
    }
}

/// What the stream did, next to what it produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// What the chaos plan injected into the feed.
    pub feed: FeedStats,
    /// Records consumed live (excludes catch-up replay after a resume).
    pub records_total: u64,
    /// Records rejected for non-finite positions (quarantined).
    pub records_malformed: u64,
    /// Records that arrived past their trip's close (quarantined).
    pub late_dropped: u64,
    /// Trips closed by watermark or end-of-stream flush.
    pub trips_closed: u64,
    /// Times the feeder blocked on a full queue.
    pub backpressure_stalls: u64,
    /// Injected feeder stalls honoured.
    pub feeder_stalls: u64,
    /// Stream-cursor checkpoints written.
    pub checkpoints: u64,
    /// Times this logical run resumed from a checkpoint.
    pub resumes: u64,
    /// Cursor this process resumed from, if it did.
    pub resumed_from: Option<u64>,
    /// Deepest the ingest queue got.
    pub max_queue_depth: u64,
    /// Most transitions simultaneously inside the sliding window.
    pub window_peak_transitions: u64,
}

/// Output of a streamed study: the batch-identical study products plus
/// the stream's own report.
#[derive(Debug)]
pub struct StreamRun {
    pub output: StudyOutput,
    pub report: StreamReport,
}

/// Runs the full study as a stream. `checkpoint_dir`, when given, holds
/// the stream-cursor checkpoint (`stream.ttck`): an existing checkpoint
/// whose config fingerprint matches is resumed from; an injected
/// mid-stream kill writes one before returning
/// [`Error::InjectedKill`].
pub fn run_stream(
    config: StudyConfig,
    stream: &StreamConfig,
    checkpoint_dir: Option<&Path>,
) -> Result<StreamRun, Error> {
    engine::run_stream(config, stream, checkpoint_dir)
}
