//! Stream-cursor checkpoints.
//!
//! Mid-stream kill/resume reuses the store's TTCK checkpoint container
//! (CRC-framed sections, atomic rename — see `taxitrace-store`). A stream
//! checkpoint does **not** persist open-trip buffers or watermark state:
//! the feed is deterministic, so a resuming run replays records
//! `0..cursor` through the watermark machine in quiet mode (no metrics,
//! no quarantine, no downstream work) to rebuild them exactly. What *is*
//! persisted is everything replay would otherwise redo or lose:
//!
//! * `stream/cursor` — records consumed, plus persisted counter values so
//!   cumulative totals survive the kill;
//! * `stream/totals` — the aggregate [`CleaningTotals`] absorbed so far;
//! * `stream/sessions` — per closed session: its cleaned segments (the
//!   shared `taxitrace-core` segment codec) or its clean-stage
//!   quarantine entry;
//! * `stream/quarantine` — stream-stage entries (late-past-watermark,
//!   malformed) in feed order, encoded with the ledger's wire tags.
//!
//! The file is keyed by a fingerprint of both the study config and the
//! stream config: resuming under different watermark semantics would
//! silently change which trips closed before the cursor, so it must
//! start fresh instead.

use std::collections::BTreeMap;
use std::path::Path;

use bytes::{BufMut, Bytes, BytesMut};
use taxitrace_cleaning::TripSegment;
use taxitrace_core::{
    decode_segments, decode_totals, encode_segments, encode_totals, CleaningTotals, Error,
    QuarantineEntry, QuarantineReason,
};
use taxitrace_store::codec::{put_str, take_str, take_u32, take_u64, take_u8};
use taxitrace_store::{load_checkpoint, save_checkpoint};

use crate::metrics::{StreamMetrics, PERSISTED_COUNTERS};

/// File name inside the checkpoint directory.
pub const STREAM_CHECKPOINT_FILE: &str = "stream.ttck";

/// Products of one closed session, in the exact shape the batch clean
/// stage would have produced for it.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionProducts {
    /// Cleaned segments (empty when quarantined — batch absorbs nothing
    /// from a failed clean task).
    pub segments: Vec<TripSegment>,
    /// Clean-stage quarantine entry, if the session failed cleaning.
    pub quarantine: Option<QuarantineEntry>,
}

/// Everything a resumed run needs besides replaying the feed prefix.
#[derive(Debug, Default)]
pub struct StreamState {
    /// Feed records consumed before the checkpoint.
    pub cursor: u64,
    /// Aggregate cleaning totals over closed sessions.
    pub totals: CleaningTotals,
    /// Closed sessions keyed by session index.
    pub closed: BTreeMap<u32, SessionProducts>,
    /// Stream-stage quarantine entries in feed order.
    pub stream_quarantine: Vec<QuarantineEntry>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Checkpoint key: study config fingerprint mixed with the stream
/// config, so either changing invalidates the cursor.
pub fn stream_fingerprint(
    config: &taxitrace_core::StudyConfig,
    stream: &crate::StreamConfig,
) -> u64 {
    taxitrace_core::config_fingerprint(config) ^ fnv1a(format!("{stream:?}").as_bytes())
}

fn encode_entry(buf: &mut BytesMut, entry: &QuarantineEntry) -> Result<(), Error> {
    buf.put_u64_le(entry.record);
    buf.put_u8(entry.reason.wire_tag());
    put_str(buf, &entry.detail).map_err(Error::Store)
}

fn decode_entry(b: &mut Bytes, stage: &str) -> Option<QuarantineEntry> {
    let record = take_u64(b).ok()?;
    let reason = QuarantineReason::from_wire_tag(take_u8(b).ok()?)?;
    let detail = take_str(b).ok()?;
    Some(QuarantineEntry { stage: stage.into(), record, reason, detail })
}

/// Writes the stream checkpoint atomically.
pub fn save_stream_checkpoint(
    path: &Path,
    fingerprint: u64,
    state: &StreamState,
    metrics: &StreamMetrics,
) -> Result<(), Error> {
    let mut cursor = BytesMut::new();
    cursor.put_u64_le(state.cursor);
    cursor.put_u32_le(PERSISTED_COUNTERS.len() as u32);
    for name in PERSISTED_COUNTERS {
        put_str(&mut cursor, name).map_err(Error::Store)?;
        cursor.put_u64_le(metrics.persisted_value(name));
    }

    let totals = encode_totals(&state.totals);

    let mut sessions = BytesMut::new();
    sessions.put_u64_le(state.closed.len() as u64);
    for (si, products) in &state.closed {
        sessions.put_u32_le(*si);
        match &products.quarantine {
            Some(entry) => {
                sessions.put_u8(1);
                encode_entry(&mut sessions, entry)?;
            }
            None => sessions.put_u8(0),
        }
        let seg_bytes = encode_segments(&products.segments).map_err(Error::Store)?;
        sessions.put_slice(&seg_bytes);
    }

    let mut quarantine = BytesMut::new();
    quarantine.put_u64_le(state.stream_quarantine.len() as u64);
    for entry in &state.stream_quarantine {
        encode_entry(&mut quarantine, entry)?;
    }

    save_checkpoint(
        path,
        fingerprint,
        &[
            ("stream/cursor", &cursor),
            ("stream/totals", &totals),
            ("stream/sessions", &sessions),
            ("stream/quarantine", &quarantine),
        ],
    )
    .map_err(Error::Store)
}

/// Loads a stream checkpoint if one exists for this fingerprint. Returns
/// the state plus the persisted counter values (restored by the caller
/// onto fresh metric handles). Any mismatch — missing file, stale
/// fingerprint, truncated section — means "start from the beginning";
/// resumability is an optimization, never a correctness requirement.
pub fn load_stream_checkpoint(
    path: &Path,
    fingerprint: u64,
) -> Option<(StreamState, Vec<(String, u64)>)> {
    let file = load_checkpoint(path).ok()?;
    if file.fingerprint != fingerprint {
        return None;
    }

    let mut b = file.section("stream/cursor")?.clone();
    let cursor = take_u64(&mut b).ok()?;
    let n = take_u32(&mut b).ok()? as usize;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let name = take_str(&mut b).ok()?;
        let value = take_u64(&mut b).ok()?;
        counters.push((name, value));
    }

    let mut b = file.section("stream/totals")?.clone();
    let totals = decode_totals(&mut b).ok()?;

    let mut b = file.section("stream/sessions")?.clone();
    let n = take_u64(&mut b).ok()? as usize;
    let mut closed = BTreeMap::new();
    for _ in 0..n {
        let si = take_u32(&mut b).ok()?;
        let quarantine = match take_u8(&mut b).ok()? {
            0 => None,
            _ => Some(decode_entry(&mut b, "clean")?),
        };
        let segments = decode_segments(&mut b).ok()?;
        closed.insert(si, SessionProducts { segments, quarantine });
    }

    let mut b = file.section("stream/quarantine")?.clone();
    let n = take_u64(&mut b).ok()? as usize;
    let mut stream_quarantine = Vec::with_capacity(n);
    for _ in 0..n {
        stream_quarantine.push(decode_entry(&mut b, "stream")?);
    }

    Some((StreamState { cursor, totals, closed, stream_quarantine }, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_obs::Registry;

    fn sample_state() -> StreamState {
        let mut closed = BTreeMap::new();
        closed.insert(3, SessionProducts { segments: Vec::new(), quarantine: None });
        closed.insert(
            5,
            SessionProducts {
                segments: Vec::new(),
                quarantine: Some(QuarantineEntry {
                    stage: "clean".into(),
                    record: 5,
                    reason: QuarantineReason::TaskPanic,
                    detail: "chaos: injected clean-task panic (trip 5)".into(),
                }),
            },
        );
        StreamState {
            cursor: 41,
            totals: CleaningTotals { sessions: 2, ..Default::default() },
            closed,
            stream_quarantine: vec![QuarantineEntry {
                stage: "stream".into(),
                record: 9,
                reason: QuarantineReason::LatePastWatermark,
                detail: "arrival past watermark".into(),
            }],
        }
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join(format!("ttstream-ck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(STREAM_CHECKPOINT_FILE);
        let registry = Registry::new();
        let metrics = StreamMetrics::new(&registry);
        metrics.trips_closed.add(2);
        let state = sample_state();
        save_stream_checkpoint(&path, 77, &state, &metrics).expect("save");

        assert!(load_stream_checkpoint(&path, 78).is_none(), "fingerprint gate");
        let (loaded, counters) = load_stream_checkpoint(&path, 77).expect("load");
        assert_eq!(loaded.cursor, 41);
        assert_eq!(loaded.totals.sessions, 2);
        assert_eq!(loaded.closed.len(), 2);
        assert_eq!(loaded.closed[&5].quarantine, state.closed[&5].quarantine);
        assert_eq!(loaded.stream_quarantine, state.stream_quarantine);
        let trips = counters.iter().find(|(n, _)| n == "stream.trips_closed").expect("counter");
        assert_eq!(trips.1, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
