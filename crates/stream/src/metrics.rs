//! Pre-registered `stream.*` metric handles.
//!
//! Mirrors the `ServeMetrics` pattern: every stream metric is registered
//! up front so a metrics snapshot taken at any point — including from a
//! run that closed zero trips — carries the full `stream.*` family at
//! zero, and the lint registry can hold the closed set of names.

use taxitrace_obs::{Counter, Gauge, Registry};

/// Counter names persisted into (and restored from) the stream-cursor
/// checkpoint, so a killed-and-resumed run reports cumulative totals.
pub(crate) const PERSISTED_COUNTERS: &[&str] = &[
    "stream.records_total",
    "stream.records_malformed",
    "stream.late_dropped",
    "stream.trips_closed",
    "stream.bursts",
    "stream.backpressure_stalls",
    "stream.feeder_stalls",
    "stream.checkpoints",
    "stream.resumes",
];

/// Handles for every stream metric. Cheap to clone (each handle is an
/// `Arc` into the registry).
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    /// Records consumed from the ingest queue.
    pub records_total: Counter,
    /// Records rejected for non-finite positions.
    pub records_malformed: Counter,
    /// Records that arrived after their trip closed past the watermark.
    pub late_dropped: Counter,
    /// Trips released downstream (watermark closes + end-of-stream flush).
    pub trips_closed: Counter,
    /// Records flagged as part of an injected arrival burst.
    pub bursts: Counter,
    /// Times the feeder found the ingest queue full and had to block.
    pub backpressure_stalls: Counter,
    /// Injected feeder stalls honoured.
    pub feeder_stalls: Counter,
    /// Stream-cursor checkpoints written.
    pub checkpoints: Counter,
    /// Times a run resumed from a stream-cursor checkpoint.
    pub resumes: Counter,
    /// Records currently buffered in the ingest queue.
    pub queue_depth: Gauge,
    /// Frontier minus the stalest open trip's last event, seconds.
    pub watermark_lag_s: Gauge,
    /// Fused transitions inside the sliding window.
    pub window_transitions: Gauge,
    /// Distinct O-D pairs inside the sliding window.
    pub window_od_pairs: Gauge,
}

impl StreamMetrics {
    pub fn new(registry: &Registry) -> Self {
        Self {
            records_total: registry.counter("stream.records_total"),
            records_malformed: registry.counter("stream.records_malformed"),
            late_dropped: registry.counter("stream.late_dropped"),
            trips_closed: registry.counter("stream.trips_closed"),
            bursts: registry.counter("stream.bursts"),
            backpressure_stalls: registry.counter("stream.backpressure_stalls"),
            feeder_stalls: registry.counter("stream.feeder_stalls"),
            checkpoints: registry.counter("stream.checkpoints"),
            resumes: registry.counter("stream.resumes"),
            queue_depth: registry.gauge("stream.queue_depth"),
            watermark_lag_s: registry.gauge("stream.watermark_lag_s"),
            window_transitions: registry.gauge("stream.window.transitions"),
            window_od_pairs: registry.gauge("stream.window.od_pairs"),
        }
    }

    /// The persisted counter's current value, by checkpoint name.
    pub(crate) fn persisted_value(&self, name: &str) -> u64 {
        match name {
            "stream.records_total" => self.records_total.get(),
            "stream.records_malformed" => self.records_malformed.get(),
            "stream.late_dropped" => self.late_dropped.get(),
            "stream.trips_closed" => self.trips_closed.get(),
            "stream.bursts" => self.bursts.get(),
            "stream.backpressure_stalls" => self.backpressure_stalls.get(),
            "stream.feeder_stalls" => self.feeder_stalls.get(),
            "stream.checkpoints" => self.checkpoints.get(),
            "stream.resumes" => self.resumes.get(),
            _ => 0,
        }
    }

    /// Restores a persisted counter by adding its checkpointed value onto
    /// the freshly-registered (zero) handle.
    pub(crate) fn restore(&self, name: &str, value: u64) {
        let handle = match name {
            "stream.records_total" => &self.records_total,
            "stream.records_malformed" => &self.records_malformed,
            "stream.late_dropped" => &self.late_dropped,
            "stream.trips_closed" => &self.trips_closed,
            "stream.bursts" => &self.bursts,
            "stream.backpressure_stalls" => &self.backpressure_stalls,
            "stream.feeder_stalls" => &self.feeder_stalls,
            "stream.checkpoints" => &self.checkpoints,
            "stream.resumes" => &self.resumes,
            _ => return,
        };
        handle.add(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_preregistered() {
        let registry = Registry::new();
        let _ = StreamMetrics::new(&registry);
        let snapshot = registry.snapshot();
        for name in PERSISTED_COUNTERS {
            assert!(snapshot.counter(name).is_some(), "missing {name}");
        }
        for gauge in
            ["stream.queue_depth", "stream.watermark_lag_s", "stream.window.transitions"]
        {
            assert!(snapshot.gauge(gauge).is_some(), "missing {gauge}");
        }
    }

    #[test]
    fn persisted_round_trip() {
        let registry = Registry::new();
        let metrics = StreamMetrics::new(&registry);
        metrics.trips_closed.add(7);
        assert_eq!(metrics.persisted_value("stream.trips_closed"), 7);
        metrics.restore("stream.trips_closed", 3);
        assert_eq!(metrics.trips_closed.get(), 10);
    }
}
