//! Sliding-window statistics over live-closed trips.
//!
//! As trips close against the watermark, their fused transitions land
//! here; the window keeps the last `window_s` seconds of *event time* and
//! publishes how many transitions (and distinct O-D pairs) are currently
//! inside it. These are operational gauges — the authoritative study
//! tables still come from the batch-identical assembly at stream end —
//! but they are what a live deployment would watch between nightly runs.

use std::collections::{BTreeMap, VecDeque};

use crate::metrics::StreamMetrics;

/// Event-time sliding window of recently fused transitions.
#[derive(Debug)]
pub struct SlidingWindow {
    window_s: i64,
    /// `(event_s, pair)` in event-time order of admission.
    entries: VecDeque<(i64, String)>,
    /// Live multiset of O-D pair labels inside the window.
    pairs: BTreeMap<String, usize>,
    /// High-water mark of transitions simultaneously inside the window.
    peak: usize,
}

impl SlidingWindow {
    pub fn new(window_s: i64) -> Self {
        Self { window_s, entries: VecDeque::new(), pairs: BTreeMap::new(), peak: 0 }
    }

    /// Admits one fused transition at its event time and re-publishes the
    /// window gauges.
    pub fn push(&mut self, event_s: i64, pair: String, metrics: &StreamMetrics) {
        self.evict(event_s);
        *self.pairs.entry(pair.clone()).or_insert(0) += 1;
        self.entries.push_back((event_s, pair));
        self.peak = self.peak.max(self.entries.len());
        self.publish(metrics);
    }

    /// Advances window time without admitting anything (watermark moved).
    pub fn advance(&mut self, event_s: i64, metrics: &StreamMetrics) {
        self.evict(event_s);
        self.publish(metrics);
    }

    /// Most transitions ever simultaneously inside the window.
    pub fn peak(&self) -> usize {
        self.peak
    }

    fn evict(&mut self, now_s: i64) {
        let horizon = now_s.saturating_sub(self.window_s);
        while self.entries.front().is_some_and(|(ts, _)| *ts < horizon) {
            let Some((_, pair)) = self.entries.pop_front() else { break };
            match self.pairs.get_mut(&pair) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.pairs.remove(&pair);
                }
            }
        }
    }

    fn publish(&self, metrics: &StreamMetrics) {
        metrics.window_transitions.set(self.entries.len() as f64);
        metrics.window_od_pairs.set(self.pairs.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_obs::Registry;

    #[test]
    fn evicts_past_horizon_and_tracks_pairs() {
        let registry = Registry::new();
        let metrics = StreamMetrics::new(&registry);
        let mut w = SlidingWindow::new(100);
        w.push(1000, "T-S".into(), &metrics);
        w.push(1050, "S-T".into(), &metrics);
        w.push(1060, "T-S".into(), &metrics);
        assert_eq!(metrics.window_transitions.get(), 3.0);
        assert_eq!(metrics.window_od_pairs.get(), 2.0);
        // Horizon 1040: the 1000 entry falls out, one T-S remains.
        w.advance(1140, &metrics);
        assert_eq!(metrics.window_transitions.get(), 2.0);
        assert_eq!(metrics.window_od_pairs.get(), 2.0);
        w.advance(5000, &metrics);
        assert_eq!(metrics.window_transitions.get(), 0.0);
        assert_eq!(metrics.window_od_pairs.get(), 0.0);
        assert_eq!(w.peak(), 3);
    }
}
