//! Event-time watermark tracking and trip closing.
//!
//! The stream cannot wait for a session's "end" marker — devices just go
//! quiet. Instead the ingest engine tracks an **event-time watermark**:
//! the largest device timestamp seen so far minus a configured lateness
//! bound. A trip *closes* once the watermark passes its last-seen event
//! time by the idle-close gap — at that point no in-order record for the
//! trip can still be in flight, and the trip's buffered points are
//! released downstream for cleaning.
//!
//! The closing rule is deliberately conservative. With arrival times
//! synthesized as the running maximum of event times (see
//! [`crate::feed`]), a record still in flight bounds the watermark from
//! above, and a short proof (DESIGN.md §15) shows a trip can only close
//! early if the trip *itself* contains an event-time jump larger than
//! `idle_close_s + lateness_s`. The simulator's silent gaps are capped at
//! 1400 s, far below the 3600 s default, so healthy feeds never lose a
//! record — the property `tests/watermark_props.rs` pins under arbitrary
//! arrival permutations.
//!
//! Everything here is single-threaded and pure: the same offer sequence
//! always produces the same close sequence, which is what lets the
//! stream-cursor checkpoint rebuild open-trip state by replay.

use std::collections::{BTreeMap, BTreeSet};

use taxitrace_traces::RoutePoint;

/// Watermark policy knobs (a subset of [`crate::StreamConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct WatermarkConfig {
    /// How far the watermark trails the event-time frontier, seconds.
    pub lateness_s: i64,
    /// Idle gap after a trip's last event before it may close, seconds.
    pub idle_close_s: i64,
}

/// Buffered state of one still-open trip.
#[derive(Debug)]
pub struct TripBuffer {
    pub session_index: u32,
    /// Largest event timestamp seen from this trip, Unix seconds.
    pub last_event_s: i64,
    /// Points keyed by their within-session point index: duplicates
    /// collapse first-wins, and iteration yields arrival order.
    pub points: BTreeMap<u32, RoutePoint>,
}

/// What [`WatermarkMachine::offer`] did with a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Buffered into an open trip.
    Buffered,
    /// Same `(session, point)` already buffered; first record wins.
    Duplicate,
    /// The trip already closed past the watermark; the record must be
    /// quarantined by the caller, never dropped silently.
    LatePastWatermark,
}

/// Deterministic single-threaded watermark state machine.
#[derive(Debug)]
pub struct WatermarkMachine {
    cfg: WatermarkConfig,
    /// Event-time frontier: max event timestamp accepted so far.
    max_event_s: Option<i64>,
    open: BTreeMap<u32, TripBuffer>,
    /// Close schedule: `(last_event_s, session_index)` per open trip.
    /// Ordered, so trips close oldest-frontier-first, deterministically.
    close_index: BTreeSet<(i64, u32)>,
    closed: BTreeSet<u32>,
}

impl WatermarkMachine {
    pub fn new(cfg: WatermarkConfig) -> Self {
        Self {
            cfg,
            max_event_s: None,
            open: BTreeMap::new(),
            close_index: BTreeSet::new(),
            closed: BTreeSet::new(),
        }
    }

    /// Current watermark, or `None` before the first record.
    pub fn watermark_s(&self) -> Option<i64> {
        self.max_event_s.map(|m| m.saturating_sub(self.cfg.lateness_s))
    }

    /// Event-time frontier (no lateness applied).
    pub fn frontier_s(&self) -> Option<i64> {
        self.max_event_s
    }

    /// Open trips still buffering points.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Seconds between the frontier and the stalest open trip — the
    /// `stream.watermark_lag_s` gauge.
    pub fn lag_s(&self) -> i64 {
        match (self.max_event_s, self.close_index.first()) {
            (Some(frontier), Some(&(oldest, _))) => frontier.saturating_sub(oldest),
            _ => 0,
        }
    }

    /// Has this trip already been closed?
    pub fn is_closed(&self, session_index: u32) -> bool {
        self.closed.contains(&session_index)
    }

    /// Offers one record. The caller must reject malformed records before
    /// offering — they would otherwise advance the watermark on garbage.
    pub fn offer(
        &mut self,
        session_index: u32,
        point_index: u32,
        event_s: i64,
        point: RoutePoint,
    ) -> Disposition {
        if self.closed.contains(&session_index) {
            // A record this late does not advance the watermark either:
            // one day-old timestamp must not catapult every live trip
            // past its idle gap.
            return Disposition::LatePastWatermark;
        }
        self.max_event_s = Some(self.max_event_s.map_or(event_s, |m| m.max(event_s)));
        let buf = self.open.entry(session_index).or_insert_with(|| {
            self.close_index.insert((event_s, session_index));
            TripBuffer { session_index, last_event_s: event_s, points: BTreeMap::new() }
        });
        if buf.points.contains_key(&point_index) {
            return Disposition::Duplicate;
        }
        if event_s > buf.last_event_s {
            self.close_index.remove(&(buf.last_event_s, session_index));
            buf.last_event_s = event_s;
            self.close_index.insert((event_s, session_index));
        }
        buf.points.insert(point_index, point);
        Disposition::Buffered
    }

    /// Releases every trip whose idle gap the watermark has passed, in
    /// deterministic `(last_event, session)` order.
    pub fn drain_closable(&mut self) -> Vec<TripBuffer> {
        let Some(watermark) = self.watermark_s() else { return Vec::new() };
        let mut out = Vec::new();
        while let Some(&(last_event, si)) = self.close_index.first() {
            if last_event.saturating_add(self.cfg.idle_close_s) >= watermark {
                break;
            }
            self.close_index.pop_first();
            self.closed.insert(si);
            // The close index tracks exactly the open trips, so the
            // remove always hits; a desynced entry simply yields nothing.
            if let Some(buf) = self.open.remove(&si) {
                out.push(buf);
            }
        }
        out
    }

    /// End of stream: closes every remaining open trip, same order.
    pub fn flush(&mut self) -> Vec<TripBuffer> {
        let mut out = Vec::new();
        while let Some((_, si)) = self.close_index.pop_first() {
            self.closed.insert(si);
            if let Some(buf) = self.open.remove(&si) {
                out.push(buf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_traces::{RoutePoint, TaxiId, TripId};

    fn point(ts: i64) -> RoutePoint {
        RoutePoint {
            point_id: 0,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: taxitrace_geo::GeoPoint { lon: 25.47, lat: 65.01 },
            pos: taxitrace_geo::Point { x: 0.0, y: 0.0 },
            timestamp: taxitrace_timebase::Timestamp::from_secs(ts),
            speed_kmh: 0.0,
            heading_deg: 0.0,
            fuel_ml: 0.0,
            truth: taxitrace_traces::PointTruth { seq: 0, element: None },
        }
    }

    fn cfg() -> WatermarkConfig {
        WatermarkConfig { lateness_s: 10, idle_close_s: 100 }
    }

    #[test]
    fn closes_only_past_idle_gap() {
        let mut m = WatermarkMachine::new(cfg());
        assert_eq!(m.offer(0, 0, 1000, point(1000)), Disposition::Buffered);
        // Watermark 990: nowhere near 1000 + 100.
        assert!(m.drain_closable().is_empty());
        assert_eq!(m.offer(1, 0, 1110, point(1110)), Disposition::Buffered);
        // Watermark 1100: not *strictly* past 1000 + 100 yet.
        assert!(m.drain_closable().is_empty());
        assert_eq!(m.offer(1, 1, 1111, point(1111)), Disposition::Buffered);
        // Watermark 1101 > 1100: trip 0 closes, trip 1 stays.
        let closed = m.drain_closable();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].session_index, 0);
        assert!(m.is_closed(0));
        assert_eq!(m.open_count(), 1);
    }

    #[test]
    fn late_record_is_reported_not_dropped() {
        let mut m = WatermarkMachine::new(cfg());
        m.offer(0, 0, 1000, point(1000));
        m.offer(1, 0, 2000, point(2000));
        assert_eq!(m.drain_closable().len(), 1);
        assert_eq!(m.offer(0, 1, 1001, point(1001)), Disposition::LatePastWatermark);
        // And the frontier did not move backwards or forwards for it.
        assert_eq!(m.frontier_s(), Some(2000));
    }

    #[test]
    fn duplicates_collapse_first_wins() {
        let mut m = WatermarkMachine::new(cfg());
        let first = point(1000);
        let mut second = point(1000);
        second.speed_kmh = 99.0;
        assert_eq!(m.offer(0, 0, 1000, first), Disposition::Buffered);
        assert_eq!(m.offer(0, 0, 1000, second), Disposition::Duplicate);
        let closed = m.flush();
        assert_eq!(closed[0].points.len(), 1);
        assert_eq!(closed[0].points[&0].speed_kmh, 0.0);
    }

    #[test]
    fn flush_closes_everything_in_event_order() {
        let mut m = WatermarkMachine::new(cfg());
        m.offer(2, 0, 3000, point(3000));
        m.offer(0, 0, 1000, point(1000));
        m.offer(1, 0, 2000, point(2000));
        let order: Vec<u32> = m.flush().iter().map(|b| b.session_index).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(m.open_count(), 0);
    }

    #[test]
    fn lag_tracks_stalest_open_trip() {
        let mut m = WatermarkMachine::new(cfg());
        m.offer(0, 0, 1000, point(1000));
        m.offer(1, 0, 1050, point(1050));
        assert_eq!(m.lag_s(), 50);
    }
}
