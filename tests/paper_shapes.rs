//! The paper's headline shape claims, asserted end-to-end through the
//! public API at a moderate scale. These are the claims `EXPERIMENTS.md`
//! reports; this test keeps them true as the code evolves.

use std::sync::OnceLock;

use taxi_traces::core::{
    mixed_model, seasonal_deltas, temperature_analysis, Study, StudyConfig, StudyOutput,
};
use taxi_traces::geo::{Grid, Point};
use taxi_traces::timebase::Season;

fn output() -> &'static StudyOutput {
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| Study::new(StudyConfig::scaled(2012, 0.3)).run().expect("study runs"))
}

#[test]
fn funnel_shape_table3() {
    let out = output();
    let mut segs = 0;
    let mut trans = 0;
    for r in out.funnel() {
        assert!(r.any_crossing <= r.segments_total);
        assert!(r.filtered_cleaned <= r.any_crossing);
        assert!(r.transitions_total <= r.filtered_cleaned);
        assert!(r.within_center <= r.transitions_total);
        assert!(r.post_filtered <= r.within_center);
        segs += r.segments_total;
        trans += r.transitions_total;
    }
    let ratio = trans as f64 / segs as f64;
    // Paper: 770/20077 = 0.038.
    assert!((0.015..0.12).contains(&ratio), "transitions/segments {ratio}");
}

#[test]
fn corridor_contrast_table4() {
    let out = output();
    let pooled = |pairs: [&str; 2]| {
        let v: Vec<f64> = out
            .transitions
            .iter()
            .filter(|t| pairs.contains(&t.pair.as_str()))
            .map(|t| t.low_speed_pct)
            .collect();
        (v.iter().sum::<f64>() / v.len().max(1) as f64, v.len())
    };
    let (ts, n_ts) = pooled(["T-S", "S-T"]);
    let (tl, n_tl) = pooled(["T-L", "L-T"]);
    assert!(n_ts > 20 && n_tl > 20, "enough transitions: {n_ts}/{n_tl}");
    assert!(
        ts > tl - 3.0,
        "T-S corridor low-speed {ts:.1} vs T-L corridor {tl:.1} (crowd-zone claim)"
    );
    // Light counts are similar across corridors (within a factor of 1.6) —
    // the paper's point that counts alone do not explain the gap.
    let lights = |pairs: [&str; 2]| {
        let v: Vec<f64> = out
            .transitions
            .iter()
            .filter(|t| pairs.contains(&t.pair.as_str()))
            .map(|t| t.traffic_lights as f64)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let lts = lights(["T-S", "S-T"]);
    let ltl = lights(["T-L", "L-T"]);
    let ratio = lts.max(ltl) / lts.min(ltl).max(0.1);
    assert!(ratio < 1.8, "light counts similar: {lts:.1} vs {ltl:.1}");
}

#[test]
fn lights_collapse_variance_table5() {
    let out = output();
    let t5 = out.grid_stats(None).table5();
    let no_lights = &t5.classes[0];
    let with_lights = &t5.classes[3];
    assert!(with_lights.mean < no_lights.mean);
    assert!(with_lights.var < no_lights.var / 1.5, "variance collapse");
}

#[test]
fn seasons_order_fig5() {
    let out = output();
    let d = seasonal_deltas(out);
    let get = |s: Season| d.iter().find(|x| x.season == s).expect("season present");
    assert!(get(Season::Winter).delta_kmh < get(Season::Autumn).delta_kmh);
    assert!(get(Season::Winter).delta_kmh < get(Season::Summer).delta_kmh);
}

#[test]
fn geography_effect_fig8_fig9() {
    let out = output();
    let m = mixed_model(out).expect("fits");
    assert!(m.sigma2_u.sqrt() > 3.0, "sigma_u {}", m.sigma2_u.sqrt());
    let spread = m.cells.last().expect("cells").blup - m.cells.first().expect("cells").blup;
    // Paper: coefficients span ca. -15 … +20 km/h.
    assert!(spread > 15.0, "intercept spread {spread:.1}");
    // Centre slower than outskirts.
    let grid = Grid::new(Point::new(0.0, 0.0), out.config.grid_size_m);
    let mean_of = |pred: &dyn Fn(f64) -> bool| {
        let v: Vec<f64> = m
            .cells
            .iter()
            .filter(|c| pred(grid.cell_center(c.cell).distance(Point::new(0.0, 0.0))))
            .map(|c| c.blup)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let centre = mean_of(&|d| d < 500.0);
    let outskirts = mean_of(&|d| d > 1200.0);
    assert!(centre < outskirts, "centre {centre:.1} vs outskirts {outskirts:.1}");
}

#[test]
fn light_effect_independent_of_weather_fig10() {
    let out = output();
    let cells = temperature_analysis(out);
    // Pool the two groups: the >= group must sit clearly above.
    let mean_of = |many: bool| {
        let v: Vec<(usize, f64)> = cells
            .iter()
            .filter(|c| c.many_lights == many && c.n > 0)
            .map(|c| (c.n, c.mean_low_speed_pct))
            .collect();
        let n: usize = v.iter().map(|x| x.0).sum();
        let s: f64 = v.iter().map(|x| x.0 as f64 * x.1).sum();
        s / n.max(1) as f64
    };
    let few = mean_of(false);
    let many = mean_of(true);
    assert!(many > few + 3.0, "many-lights {many:.1}% vs few {few:.1}%");
    // Per populated class, the claim holds with slack for small samples.
    for pair in cells.chunks(2) {
        if pair[0].n >= 15 && pair[1].n >= 15 {
            assert!(
                pair[1].mean_low_speed_pct > pair[0].mean_low_speed_pct - 2.0,
                "{}: {:.1} vs {:.1}",
                pair[0].class,
                pair[0].mean_low_speed_pct,
                pair[1].mean_low_speed_pct
            );
        }
    }
}

#[test]
fn fuel_correlates_with_low_speed() {
    let out = output();
    let low: Vec<f64> = out.transitions.iter().map(|t| t.low_speed_pct).collect();
    let fuel_km: Vec<f64> =
        out.transitions.iter().map(|t| t.fuel_ml / t.dist_km.max(0.1)).collect();
    let r = taxi_traces::stats::pearson(&low, &fuel_km).expect("correlation defined");
    assert!(r > 0.3, "corr(low-speed, fuel/km) = {r:.2}");
}
