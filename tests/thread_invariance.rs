//! Thread-count invariance: the study pipeline is a pure function of its
//! seed, *not* of the worker pool. Sharded simulation derives one RNG
//! stream per (taxi, day) work unit and the executors merge results in
//! submission order, so `--threads 1/2/8` must produce bit-identical
//! output — including on a single-core host, where 8 workers means
//! deliberate oversubscription (the override is taken literally).

use taxi_traces::core::{Study, StudyConfig, StudyOutput};

fn run_with_workers(workers: usize) -> StudyOutput {
    taxitrace_exec::set_max_workers(workers);
    let out = Study::new(StudyConfig::quick(77)).run().expect("study runs");
    taxitrace_exec::set_max_workers(0);
    out
}

/// Every pipeline artefact the study hands downstream, compared
/// field-for-field (all `f64`s via `PartialEq`, i.e. bit semantics for
/// any value the pipeline actually produces — NaNs would already fail
/// the pipeline's own validation).
fn assert_identical(a: &StudyOutput, b: &StudyOutput, workers: usize) {
    assert_eq!(a.cleaning, b.cleaning, "cleaning totals at {workers} workers");
    assert_eq!(a.segments, b.segments, "segments at {workers} workers");
    assert_eq!(a.funnel_rows, b.funnel_rows, "funnel at {workers} workers");
    assert_eq!(a.transitions, b.transitions, "transitions at {workers} workers");
}

#[test]
fn study_output_is_invariant_across_thread_counts() {
    let reference = run_with_workers(1);
    assert!(!reference.transitions.is_empty(), "seed 77 must produce transitions");
    for workers in [2, 8] {
        let other = run_with_workers(workers);
        assert_identical(&reference, &other, workers);
    }
}
