//! Stream/batch parity: running the study as a stream — points arriving
//! one at a time through the bounded queue, trips closed by the
//! watermark, cleaned incrementally — must converge to the *identical*
//! study output the batch pipeline produces from the same seed. Not
//! statistically close: equal, field for field.

use std::sync::OnceLock;

use taxi_traces::core::{Study, StudyConfig, StudyOutput};
use taxi_traces::stream::{run_stream, StreamConfig, StreamRun};

fn config() -> StudyConfig {
    StudyConfig::scaled(7, 0.1)
}

fn batch() -> &'static StudyOutput {
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| Study::new(config()).run().expect("batch study runs"))
}

fn streamed() -> &'static StreamRun {
    static RUN: OnceLock<StreamRun> = OnceLock::new();
    RUN.get_or_init(|| {
        run_stream(config(), &StreamConfig::default(), None).expect("stream runs")
    })
}

#[test]
fn healthy_feed_loses_nothing() {
    let run = streamed();
    assert_eq!(run.report.late_dropped, 0, "no record may fall past the watermark");
    assert_eq!(run.report.records_malformed, 0);
    assert_eq!(run.report.records_total, run.report.feed.records);
    assert!(run.report.trips_closed > 0);
}

#[test]
fn cleaning_parity() {
    let (b, s) = (batch(), streamed());
    assert_eq!(b.cleaning, s.output.cleaning, "cleaning totals must match batch");
    assert_eq!(b.segments.len(), s.output.segments.len());
    for (x, y) in b.segments.iter().zip(&s.output.segments) {
        assert_eq!(x.trip_id, y.trip_id);
        assert_eq!(x.taxi, y.taxi);
        assert_eq!(x.start_time, y.start_time);
        assert_eq!(x.points, y.points);
    }
}

#[test]
fn od_funnel_parity() {
    let (b, s) = (batch(), streamed());
    assert_eq!(b.funnel_rows, s.output.funnel_rows, "Table 3 funnel must match batch");
}

#[test]
fn fused_transition_parity() {
    let (b, s) = (batch(), streamed());
    assert_eq!(b.transitions.len(), s.output.transitions.len());
    for (x, y) in b.transitions.iter().zip(&s.output.transitions) {
        assert_eq!(x, y, "fused transition records must be byte-identical");
    }
}

#[test]
fn quarantine_parity() {
    let (b, s) = (batch(), streamed());
    assert_eq!(
        b.quarantine.entries(),
        s.output.quarantine.entries(),
        "a healthy stream quarantines exactly what batch does"
    );
}

#[test]
fn stream_metrics_present_in_snapshot() {
    let s = streamed();
    for name in [
        "stream.records_total",
        "stream.trips_closed",
        "stream.late_dropped",
        "stream.backpressure_stalls",
    ] {
        assert!(s.output.metrics.counter(name).is_some(), "missing counter {name}");
    }
    assert!(s.output.metrics.gauge("stream.queue_depth").is_some());
    assert!(s.output.metrics.gauge("stream.watermark_lag_s").is_some());
    assert_eq!(
        s.output.metrics.counter("stream.records_total"),
        Some(s.report.feed.records)
    );
}
