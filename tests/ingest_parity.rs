//! External-format round trip and worker invariance of the ingest stage.
//!
//! Two claims, one test binary (it overrides the global worker pool, so
//! it must not share a process with other tests):
//!
//! * **Round trip** — exporting a simulated study to the external trace
//!   CSV and ingesting it back (with and without the exported OSMX map)
//!   reproduces the batch study's pipeline output field-for-field, down
//!   to the float bits of every fused transition. Exact-float formatting
//!   in the exporters is what makes this hold.
//! * **Worker invariance** — ingesting a seeded mutant of that export
//!   quarantines the identical ledger (records, reasons, details) at 1
//!   and at 4 workers: line lexing is parallel, but the issue ledger is
//!   ordered by record number, never by completion order.

use taxi_traces::core::{Study, StudyConfig, StudyOutput};
use taxi_traces::ingest::{export_osmx, export_trace_csv, mutate};
use taxi_traces::traces::PointTruth;

/// The external schema deliberately carries no simulator ground truth
/// (`PointTruth` is validation-only and excluded from the study
/// fingerprint), so truth is normalized away before the field-for-field
/// comparison; everything the analyses consume must still be bit-equal.
fn assert_identical(a: &StudyOutput, b: &StudyOutput, what: &str) {
    let strip = |out: &StudyOutput| {
        let mut segments = out.segments.clone();
        let mut transitions = out.transitions.clone();
        for p in segments
            .iter_mut()
            .flat_map(|s| s.points.iter_mut())
            .chain(transitions.iter_mut().flat_map(|t| t.points.iter_mut()))
        {
            p.truth = PointTruth { seq: 0, element: None };
        }
        (segments, transitions)
    };
    let (a_segments, a_transitions) = strip(a);
    let (b_segments, b_transitions) = strip(b);
    assert_eq!(a.cleaning, b.cleaning, "cleaning totals: {what}");
    assert_eq!(a_segments, b_segments, "segments: {what}");
    assert_eq!(a.funnel_rows, b.funnel_rows, "funnel: {what}");
    assert_eq!(a_transitions, b_transitions, "transitions: {what}");
}

#[test]
fn external_round_trip_reproduces_the_batch_study_at_any_worker_count() {
    let dir = std::env::temp_dir().join(format!("ttrs-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let config = StudyConfig::quick(77);
    let study = Study::new(config.clone());

    let batch = study.run().expect("batch study runs");
    assert!(!batch.transitions.is_empty(), "seed 77 must produce transitions");

    let sim = study.simulate().expect("simulate runs");
    let csv_path = dir.join("traces.csv");
    let map_path = dir.join("map.osmx");
    std::fs::write(&csv_path, export_trace_csv(sim.store.sessions())).expect("write csv");
    std::fs::write(&map_path, export_osmx(&sim.city)).expect("write map");

    // Round trip, synthetic city: bit-identical to the batch study.
    let ingested = study.run_from_external(&csv_path, None).expect("ingest runs");
    assert!(ingested.quarantine.is_empty(), "clean export quarantines nothing");
    assert_identical(&batch, &ingested, "csv round trip");

    // Round trip through the exported map as well.
    let with_map =
        study.run_from_external(&csv_path, Some(&map_path)).expect("map ingest runs");
    assert!(with_map.quarantine.is_empty(), "clean map quarantines nothing");
    assert_identical(&batch, &with_map, "csv+osmx round trip");

    // Worker invariance on damaged input: the same seeded mutant must
    // quarantine the identical ledger at 1 and at 4 workers.
    let mutant_path = dir.join("mutant.csv");
    let bytes = std::fs::read(&csv_path).expect("read export");
    std::fs::write(&mutant_path, mutate(&bytes, 42)).expect("write mutant");

    let mut ledgers = Vec::new();
    for workers in [1usize, 4] {
        taxitrace_exec::set_max_workers(workers);
        let out = study.run_from_external(&mutant_path, None);
        taxitrace_exec::set_max_workers(0);
        // A mutant may or may not stay under the error budget; both
        // verdicts are fine as long as they agree across worker counts.
        ledgers.push(match out {
            Ok(out) => Ok(out
                .quarantine
                .entries()
                .iter()
                .map(|e| (e.record, e.reason.label(), e.detail.clone()))
                .collect::<Vec<_>>()),
            Err(e) => Err(e.to_string()),
        });
    }
    assert_eq!(ledgers[0], ledgers[1], "quarantine ledger differs across worker counts");

    std::fs::remove_dir_all(&dir).ok();
}
