//! Serving parity: the serving snapshot must answer every query
//! byte-identically to the batch path, over the trait and over the wire,
//! under one reader or many.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use proptest::prelude::*;
use taxi_traces::core::{
    QueryEngine, QueryRequest, Study, StudyConfig, StudyOutput,
};
use taxi_traces::geo::CellId;
use taxi_traces::serve::{run_load, LoadSpec, ServeOptions, Server, Snapshot};
use taxi_traces::timebase::Timestamp;
use taxi_traces::traces::TripId;

fn config() -> StudyConfig {
    StudyConfig::scaled(7, 0.1)
}

/// The batch path's object: a plain study output.
fn batch() -> &'static StudyOutput {
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| Study::new(config()).run().expect("study runs"))
}

/// The serving path's object. The study is a pure function of its seed,
/// so re-running the pipeline yields the identical output the batch
/// static holds — which is exactly what the parity assertions verify.
fn snapshot() -> &'static Snapshot {
    static SNAP: OnceLock<Snapshot> = OnceLock::new();
    SNAP.get_or_init(|| Snapshot::from_output(Study::new(config()).run().expect("study runs")))
}

/// Maps proptest-chosen indexes onto the study's real domain, with
/// deliberate misses and inverted windows mixed in.
fn request_from(kind: usize, a: usize, b: usize) -> QueryRequest {
    let out = batch();
    match kind % 4 {
        0 => {
            let times: Vec<i64> =
                out.transitions.iter().map(|t| t.start_time.secs()).collect();
            match a % 3 {
                0 => QueryRequest::OdFlow { window: None },
                // Arbitrary (possibly inverted) window over real times.
                _ => QueryRequest::OdFlow {
                    window: Some((
                        Timestamp::from_secs(times[a % times.len()]),
                        Timestamp::from_secs(times[b % times.len()]),
                    )),
                },
            }
        }
        1 => {
            let cells: Vec<CellId> = snapshot().grid().cells.keys().copied().collect();
            let cell = if a.is_multiple_of(8) {
                CellId { ix: 9_999, iy: 9_999 }
            } else {
                cells[b % cells.len()]
            };
            QueryRequest::CellSpeed { cell }
        }
        2 => {
            let sessions = out.store.sessions();
            let trip = if a.is_multiple_of(8) {
                TripId(u64::MAX)
            } else {
                sessions[b % sessions.len()].id
            };
            QueryRequest::TripLookup { trip }
        }
        _ => {
            let pairs: Vec<&str> = out.transitions.iter().map(|t| t.pair.as_str()).collect();
            QueryRequest::GridStats {
                pair: if a.is_multiple_of(2) { None } else { Some(pairs[b % pairs.len()].to_string()) },
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request answers byte-identically through the batch output
    /// and the serving snapshot — including typed errors for inverted
    /// windows.
    #[test]
    fn snapshot_answers_match_batch_byte_for_byte(
        kind in 0usize..4,
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let req = request_from(kind, a, b);
        let from_batch = batch().query(&req).map(|r| r.to_json());
        let from_snapshot = snapshot().query(&req).map(|r| r.to_json());
        prop_assert_eq!(from_batch, from_snapshot);
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // A shedding server answers and closes before reading the request;
    // the write may then hit a closed peer, but the response bytes are
    // still in the receive buffer — so tolerate the broken pipe.
    let _ = write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("framed response");
    let status = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    (status, body.to_string())
}

/// The HTTP front end serves the same bytes the trait returns, for all
/// four query kinds, and rejects an inverted window with a typed 400.
#[test]
fn http_responses_equal_in_process_answers() {
    let server = Server::start(
        Snapshot::from_output(Study::new(config()).run().expect("study runs")),
        0,
        2,
        taxi_traces::obs::Registry::new(),
    )
    .expect("server starts");
    let snap = server.snapshot();
    let first_trip = snap.output().store.sessions()[0].id.0;
    let (&cell, _) = snap.grid().cells.iter().next().expect("populated grid");
    let cases = vec![
        ("/od_flow".to_string(), QueryRequest::OdFlow { window: None }),
        (
            format!("/cell_speed?ix={}&iy={}", cell.ix, cell.iy),
            QueryRequest::CellSpeed { cell },
        ),
        (format!("/trip?id={first_trip}"), QueryRequest::TripLookup { trip: TripId(first_trip) }),
        ("/grid_stats".to_string(), QueryRequest::GridStats { pair: None }),
    ];
    for (path, req) in cases {
        let (status, body) = http_get(server.addr(), &path);
        assert_eq!(status, 200, "{path}");
        let expected = snap.query(&req).expect("valid query").to_json();
        assert_eq!(body, expected, "{path}: HTTP bytes must equal the trait's answer");
    }
    let (status, body) = http_get(server.addr(), "/od_flow?from=10&to=5");
    assert_eq!(status, 400);
    assert!(body.contains("empty time range"), "{body}");
    let (status, _) = http_get(server.addr(), "/no_such_route");
    assert_eq!(status, 404);
    server.shutdown();
}

/// Many concurrent readers, zero locks on the read path: a seeded load
/// over N client threads completes without errors and produces the same
/// mix and response fingerprints as a single-threaded replay of the same
/// plan domain.
#[test]
fn concurrent_readers_agree_with_sequential_replay() {
    let registry = taxi_traces::obs::Registry::new();
    let server = Server::start(
        Snapshot::from_output(Study::new(config()).run().expect("study runs")),
        0,
        4,
        registry.clone(),
    )
    .expect("server starts");
    let snap = server.snapshot();
    let spec = LoadSpec { seed: 99, clients: 4, requests_per_client: 30 };
    let concurrent = run_load(server.addr(), &snap, &spec);
    assert_eq!(concurrent.requests, 120);
    assert_eq!(concurrent.errors, 0, "no request may fail");
    // Same plan, replayed under a fresh thread interleaving: the
    // fingerprints must be identical because they are order- and
    // thread-independent by construction.
    let replay = run_load(server.addr(), &snap, &spec);
    assert_eq!(concurrent.mix_fingerprint, replay.mix_fingerprint);
    assert_eq!(concurrent.response_fingerprint, replay.response_fingerprint);
    let counters = registry.snapshot();
    assert!(counters.counter("serve.requests_total").unwrap_or(0) >= 240);
    server.shutdown();
}

/// Header hardening: a request that exceeds the 64-line header-drain cap
/// is answered with a typed 431 (and counted in `serve.oversize_total`)
/// before the connection closes — not silently dropped, which would look
/// like a network fault and invite a retry of the same oversized request.
#[test]
fn oversized_headers_refused_with_typed_431() {
    let registry = taxi_traces::obs::Registry::new();
    let server = Server::start(
        Snapshot::from_output(Study::new(config()).run().expect("study runs")),
        0,
        2,
        registry.clone(),
    )
    .expect("server starts");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let _ = write!(stream, "GET /healthz HTTP/1.1\r\n");
    for i in 0..80 {
        let _ = write!(stream, "X-Pad-{i}: x\r\n");
    }
    let _ = write!(stream, "\r\n");
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("framed response");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    assert_eq!(status, 431);
    assert!(body.contains("too many header lines"), "{body}");
    let counters = registry.snapshot();
    assert_eq!(counters.counter("serve.oversize_total"), Some(1));
    // The refused request never reached the parser, so it is not work done.
    assert_eq!(counters.counter("serve.requests_total"), Some(0));
    server.shutdown();
}

/// Admission control: with the in-flight cap forced to zero, every
/// request is shed with a typed 503 and counted in `serve.shed_total` —
/// the server degrades by refusing, never by queueing without bound.
#[test]
fn over_capacity_requests_shed_with_typed_503() {
    let registry = taxi_traces::obs::Registry::new();
    let server = Server::start_with(
        Snapshot::from_output(Study::new(config()).run().expect("study runs")),
        0,
        2,
        registry.clone(),
        ServeOptions { max_inflight: 0 },
    )
    .expect("server starts");
    for _ in 0..5 {
        let (status, body) = http_get(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("over capacity"), "{body}");
    }
    let counters = registry.snapshot();
    assert_eq!(counters.counter("serve.shed_total"), Some(5));
    // Shed requests never reach the request counter: they are refused
    // before parsing, so the serving metrics stay honest about work done.
    assert_eq!(counters.counter("serve.requests_total"), Some(0));
    server.shutdown();
}
