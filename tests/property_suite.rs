//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, exercised through the public API.

use proptest::prelude::*;
use taxi_traces::geo::{GeoPoint, LocalProjection, Point, Polyline};
use taxi_traces::roadnet::{
    ElementId, FlowDirection, FunctionalClass, RoadGraph, TrafficElement,
};
use taxi_traces::store::codec;
use taxi_traces::timebase::Timestamp;
use taxi_traces::traces::{CustomerTripTruth, PointTruth, RawTrip, RoutePoint, TaxiId, TripId};

fn proj() -> LocalProjection {
    LocalProjection::new(GeoPoint::new(25.4651, 65.0121))
}

/// Builds a connected "ladder" street network from arbitrary block lengths:
/// two parallel horizontal streets with rungs, guaranteeing junctions.
fn ladder(blocks: &[f64]) -> Vec<TrafficElement> {
    let mut els = Vec::new();
    let mut id = 1u64;
    let mut x = 0.0;
    let mk = |id: &mut u64, a: (f64, f64), b: (f64, f64)| {
        let e = TrafficElement {
            id: ElementId(*id),
            geometry: Polyline::new(vec![Point::new(a.0, a.1), Point::new(b.0, b.1)])
                .expect("two distinct points"),
            class: FunctionalClass::Local,
            speed_limit_kmh: 40.0,
            flow: FlowDirection::Both,
        };
        *id += 1;
        e
    };
    // First rung.
    els.push(mk(&mut id, (0.0, 0.0), (0.0, 100.0)));
    for &len in blocks {
        let nx = x + len;
        els.push(mk(&mut id, (x, 0.0), (nx, 0.0)));
        els.push(mk(&mut id, (x, 100.0), (nx, 100.0)));
        els.push(mk(&mut id, (nx, 0.0), (nx, 100.0)));
        x = nx;
    }
    // Dead-end stubs at the four outer corners so they are graph vertices
    // (a stub-less single-block ladder would be a junction-free cycle).
    for &(cx, cy, dy) in
        &[(0.0, 0.0, -1.0), (0.0, 100.0, 1.0), (x, 0.0, -1.0), (x, 100.0, 1.0)]
    {
        els.push(mk(&mut id, (cx, cy), (cx, cy + dy * 20.0)));
    }
    els
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Graph construction invariants on arbitrary ladder networks: every
    /// element lands on exactly one edge, edge lengths equal their geometry,
    /// and adjacency is symmetric for two-way streets.
    #[test]
    fn graph_construction_invariants(
        blocks in proptest::collection::vec(30f64..300.0, 1..12)
    ) {
        let els = ladder(&blocks);
        let graph = RoadGraph::build(&els, proj()).expect("ladder is well-formed");

        // Every element maps to exactly one edge, and each edge's element
        // list is disjoint from the others.
        let mut seen = std::collections::HashSet::new();
        for e in graph.edges() {
            for el in &e.elements {
                prop_assert!(seen.insert(*el), "element {el} appears twice");
                prop_assert_eq!(graph.edge_of_element(*el), Some(e.id));
            }
            prop_assert!((e.length_m - e.geometry.length()).abs() < 1e-6);
            prop_assert!(e.is_two_way());
        }
        prop_assert_eq!(seen.len(), els.len());

        // Symmetric adjacency.
        for n in 0..graph.num_nodes() as u32 {
            let node = taxi_traces::roadnet::NodeId(n);
            for &(eid, nb) in graph.neighbors(node) {
                prop_assert!(graph
                    .neighbors(nb)
                    .iter()
                    .any(|&(e2, n2)| e2 == eid && n2 == node));
            }
        }
    }

    /// Dijkstra optimality sanity on ladders: the distance between the two
    /// ends never exceeds the straight-rail length plus one rung, and path
    /// length equals the sum of its edge lengths.
    #[test]
    fn dijkstra_path_consistency(
        blocks in proptest::collection::vec(30f64..300.0, 1..12)
    ) {
        use taxi_traces::roadnet::dijkstra::{shortest_path, CostModel};
        let els = ladder(&blocks);
        let graph = RoadGraph::build(&els, proj()).expect("ladder");
        let a = graph.nearest_node(Point::new(0.0, 0.0));
        let total: f64 = blocks.iter().sum();
        let b = graph.nearest_node(Point::new(total, 100.0));
        let p = shortest_path(&graph, a, b, CostModel::Distance).expect("connected");
        let edge_sum: f64 = p.edges.iter().map(|&e| graph.edge(e).length_m).sum();
        prop_assert!((p.length_m - edge_sum).abs() < 1e-6);
        prop_assert!(p.length_m <= total + 100.0 + 1e-6);
        prop_assert!(p.length_m >= (total * total + 100.0 * 100.0).sqrt() - 1e-6);
    }

    /// The binary codec round-trips arbitrary sessions bit-for-bit.
    #[test]
    fn codec_round_trips_arbitrary_sessions(
        seed_pts in proptest::collection::vec(
            (0i64..100_000, -1e4f64..1e4, -1e4f64..1e4, 0f64..120.0), 0..60),
        taxi in 1u16..8,
        trip in 0u64..1_000_000,
        with_truth in proptest::bool::ANY,
    ) {
        let points: Vec<RoutePoint> = seed_pts
            .iter()
            .enumerate()
            .map(|(i, &(t, x, y, v))| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(trip),
                taxi: TaxiId(taxi),
                geo: GeoPoint::new(25.0 + x / 1e5, 65.0 + y / 1e5),
                pos: Point::new(x, y),
                timestamp: Timestamp::from_secs(t),
                speed_kmh: v,
                heading_deg: (i as f64 * 37.0) % 360.0,
                fuel_ml: i as f64 * 0.7,
                truth: PointTruth {
                    seq: i as u32,
                    element: if i % 3 == 0 { Some(ElementId(i as u64)) } else { None },
                },
            })
            .collect();
        let truth_trips = if with_truth && !points.is_empty() {
            vec![CustomerTripTruth {
                start_seq: 0,
                end_seq: (points.len() - 1) as u32,
                origin: taxi_traces::roadnet::NodeId(1),
                destination: taxi_traces::roadnet::NodeId(2),
                elements: vec![ElementId(9), ElementId(10)],
                od_pair: Some(("T".into(), "S".into())),
            }]
        } else {
            Vec::new()
        };
        let session = RawTrip {
            id: TripId(trip),
            taxi: TaxiId(taxi),
            start_time: Timestamp::from_secs(0),
            end_time: Timestamp::from_secs(100_000),
            points,
            total_time: taxi_traces::timebase::Duration::from_secs(100_000),
            total_distance_m: 12_345.678,
            total_fuel_ml: 987.654,
            truth_trips,
        };
        let dir = std::env::temp_dir().join("taxitrace_prop_codec");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("s{trip}_{taxi}.tts"));
        codec::save_sessions(&path, std::slice::from_ref(&session)).expect("save");
        let back = codec::load(&path, &taxi_traces::store::LoadOptions::strict())
            .expect("load")
            .sessions;
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &session);
    }

    /// Projection + WKT round trip through the Digiroad text layer keeps
    /// geometry within a centimetre.
    #[test]
    fn wkt_projection_round_trip(
        coords in proptest::collection::vec((-5e3f64..5e3, -5e3f64..5e3), 2..10)
    ) {
        use taxi_traces::geo::wkt;
        let p = proj();
        let geos: Vec<GeoPoint> =
            coords.iter().map(|&(x, y)| p.unproject(Point::new(x, y))).collect();
        let text = wkt::linestring_to_wkt(&geos);
        let back = wkt::linestring_from_wkt(&text).expect("parse");
        for (g, &(x, y)) in back.iter().zip(&coords) {
            let q = p.project(*g);
            prop_assert!(q.distance(Point::new(x, y)) < 0.02, "drift {}", q.distance(Point::new(x, y)));
        }
    }
}
