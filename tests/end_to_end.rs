//! Cross-crate integration: the full pipeline from simulation to analysis,
//! checking the invariants each stage must hand to the next.

use std::sync::OnceLock;

use taxi_traces::core::{mixed_model, Study, StudyConfig, StudyOutput, Table4};
use taxi_traces::geo::Point;

fn output() -> &'static StudyOutput {
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| Study::new(StudyConfig::scaled(42, 0.1)).run().expect("study runs"))
}

#[test]
fn store_matches_simulated_fleet() {
    let out = output();
    let stats = out.store.stats();
    assert_eq!(stats.sessions, out.cleaning.sessions);
    assert_eq!(stats.points, out.cleaning.raw_points);
    assert_eq!(stats.taxis, 7);
}

#[test]
fn segments_are_subsets_of_sessions() {
    let out = output();
    for seg in out.segments.iter().take(200) {
        let session = out.store.get(seg.trip_id).expect("segment's session stored");
        assert_eq!(session.taxi, seg.taxi);
        // Every segment point exists in the session.
        let first = &seg.points[0];
        assert!(
            session.points.iter().any(|p| p.truth.seq == first.truth.seq),
            "segment points come from the session"
        );
    }
}

#[test]
fn funnel_totals_are_consistent() {
    let out = output();
    let total_segments: usize = out.funnel().iter().map(|r| r.segments_total).sum();
    assert_eq!(total_segments, out.segments.len());
    let post: usize = out.funnel().iter().map(|r| r.post_filtered).sum();
    assert_eq!(post, out.transitions.len());
}

#[test]
fn transitions_connect_od_roads() {
    let out = output();
    for t in &out.transitions {
        let (from_name, to_name) = t.pair.split_once('-').expect("pair label");
        let from = out
            .city
            .od_roads
            .iter()
            .find(|r| r.name == from_name)
            .expect("named road");
        let to = out
            .city
            .od_roads
            .iter()
            .find(|r| r.name == to_name)
            .expect("named road");
        // Transition endpooints lie near the respective roads.
        let start = t.points.first().expect("points").pos;
        let end = t.points.last().expect("points").pos;
        // Crossing indices mark the point *before* the corridor-entry step;
        // with event-based sampling that point can trail the corridor by up
        // to one emission interval (~350 m).
        assert!(from.axis.distance_to_point(start) < 600.0, "{}: start", t.pair);
        assert!(to.axis.distance_to_point(end) < 600.0, "{}: end", t.pair);
        // And the route passes the centre.
        assert!(
            t.points.iter().any(|p| out.city.center_area.contains(p.pos)),
            "{}: goes through the centre",
            t.pair
        );
    }
}

#[test]
fn matched_elements_exist_in_city() {
    let out = output();
    for t in &out.transitions {
        for e in &t.elements {
            assert!(
                out.city.graph.edge_of_element(*e).is_some(),
                "matched element {e} is on the map"
            );
        }
    }
}

#[test]
fn analyses_run_on_pipeline_output() {
    let out = output();
    let t4 = Table4::compute(out);
    assert!(!t4.rows.is_empty());
    let grid = out.grid_stats(None);
    assert!(!grid.cells.is_empty());
    let t5 = grid.table5();
    assert_eq!(t5.classes.len(), 4);
    let m = mixed_model(out).expect("lmm fits");
    assert!(m.cells.len() > 5);
    // Fitted cells are exactly the populated grid cells.
    assert_eq!(m.cells.len(), grid.cells.len());
}

#[test]
fn crowd_zone_slows_nearby_cells() {
    let out = output();
    let grid = out.grid_stats(None);
    let zone_b = Point::new(550.0, -40.0);
    let mut in_zone = Vec::new();
    let mut far = Vec::new();
    for (cell, stat) in &grid.cells {
        let c = grid.grid.cell_center(*cell);
        if c.distance(zone_b) < 300.0 {
            in_zone.push(stat.mean_speed);
        } else if c.distance(zone_b) > 900.0 && c.distance(Point::new(0.0, 0.0)) < 1500.0 {
            far.push(stat.mean_speed);
        }
    }
    if !in_zone.is_empty() && !far.is_empty() {
        let mz = in_zone.iter().sum::<f64>() / in_zone.len() as f64;
        let mf = far.iter().sum::<f64>() / far.len() as f64;
        assert!(mz < mf, "crowd-zone cells {mz:.1} vs elsewhere {mf:.1} km/h");
    }
}
