//! Reproducibility: every study is a pure function of its seed — rerunning
//! the whole pipeline yields byte-identical intermediate and final results,
//! and different seeds genuinely differ.

use taxi_traces::core::{Study, StudyConfig, Table4};

fn fingerprint(cfg: StudyConfig) -> (usize, usize, usize, u64) {
    let out = Study::new(cfg).run().expect("study runs");
    // Hash the Table 4 values coarsely into a stable fingerprint.
    let t4 = Table4::compute(&out);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in &t4.rows {
        for v in [r.summary.min, r.summary.mean, r.summary.max] {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    (
        out.segments.len(),
        out.transitions.len(),
        out.total_transition_points(),
        h,
    )
}

#[test]
fn same_seed_same_study() {
    let a = fingerprint(StudyConfig::quick(1234));
    let b = fingerprint(StudyConfig::quick(1234));
    assert_eq!(a, b);
}

#[test]
fn different_seed_different_study() {
    let a = fingerprint(StudyConfig::quick(1234));
    let b = fingerprint(StudyConfig::quick(4321));
    assert_ne!(a, b);
}

#[test]
fn scale_only_changes_volume_not_map() {
    let small = Study::new(StudyConfig::scaled(9, 0.02)).run().expect("study runs");
    let large = Study::new(StudyConfig::scaled(9, 0.05)).run().expect("study runs");
    // The city is identical (same seed)…
    assert_eq!(small.city.graph.num_nodes(), large.city.graph.num_nodes());
    assert_eq!(small.city.graph.num_edges(), large.city.graph.num_edges());
    assert_eq!(
        small.city.objects.all().len(),
        large.city.objects.all().len()
    );
    // …but the data volume scales.
    assert!(large.cleaning.raw_points > small.cleaning.raw_points);
}
