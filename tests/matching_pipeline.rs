//! Matching integration across crates: clean real simulated sessions, run
//! all three matchers on the cleaned segments, and score them against the
//! simulator's ground truth.

use taxi_traces::cleaning::{clean_session, CleaningConfig};
use taxi_traces::matching::{evaluate, CandidateIndex, MatchAccuracy, MatchConfig};
use taxi_traces::roadnet::synth::{generate, OuluConfig};
use taxi_traces::traces::{simulate_fleet, FleetConfig};
use taxi_traces::weather::WeatherModel;

#[test]
fn matchers_on_cleaned_segments() {
    let city = generate(&OuluConfig::default());
    let weather = WeatherModel::new(42);
    let mut fleet_cfg = FleetConfig::tiny(55);
    fleet_cfg.scale = 0.03;
    let data = simulate_fleet(&city, &weather, &fleet_cfg);
    let index = CandidateIndex::new(&city.graph, &city.elements);
    let config = MatchConfig::default();
    let cleaning = CleaningConfig::default();

    let mut inc = MatchAccuracy::default();
    let mut nea = MatchAccuracy::default();
    let mut segments = 0;
    for session in data.sessions.iter().take(40) {
        let cleaned = clean_session(session, &cleaning);
        for seg in &cleaned.segments {
            segments += 1;
            let m = taxi_traces::matching::incremental::match_trace(
                &city.graph,
                &index,
                &seg.points,
                &config,
            );
            inc.merge(&evaluate(&city.graph, &m, &seg.points));
            let n = taxi_traces::matching::nearest::match_trace(
                &city.graph,
                &index,
                &seg.points,
                &config,
            );
            nea.merge(&evaluate(&city.graph, &n, &seg.points));
            // The matched element path is contiguous enough to be fused:
            // non-empty whenever the segment was matched at all.
            if !m.points.is_empty() {
                assert!(!m.elements.is_empty());
            }
        }
    }
    assert!(segments > 35, "cleaned segments: {segments}");
    assert!(inc.evaluated > 500, "evaluated points: {}", inc.evaluated);
    assert!(
        inc.edge_accuracy() > 0.85,
        "incremental edge accuracy {:.3}",
        inc.edge_accuracy()
    );
    assert!(
        inc.edge_accuracy() >= nea.edge_accuracy() - 0.02,
        "incremental {:.3} vs nearest {:.3}",
        inc.edge_accuracy(),
        nea.edge_accuracy()
    );
    // GPS noise is ~4 m; the matcher should sit close to it.
    assert!(inc.mean_distance_m < 12.0, "mean distance {}", inc.mean_distance_m);
}

#[test]
fn gap_fill_ablation_covers_more_route() {
    let city = generate(&OuluConfig::default());
    let weather = WeatherModel::new(42);
    let data = simulate_fleet(&city, &weather, &FleetConfig::tiny(56));
    let index = CandidateIndex::new(&city.graph, &city.elements);
    let with_fill = MatchConfig::default();
    let without_fill = MatchConfig { gap_fill: false, ..with_fill };

    let mut len_with = 0usize;
    let mut len_without = 0usize;
    for session in data.sessions.iter().take(10) {
        let pts = session.points_in_true_order();
        len_with += taxi_traces::matching::incremental::match_trace(
            &city.graph, &index, &pts, &with_fill,
        )
        .elements
        .len();
        len_without += taxi_traces::matching::incremental::match_trace(
            &city.graph, &index, &pts, &without_fill,
        )
        .elements
        .len();
    }
    assert!(
        len_with >= len_without,
        "gap filling only adds elements: {len_with} vs {len_without}"
    );
}
