//! Map interchange integration: a city exported to the Digiroad-style text
//! format and re-imported must drive the pipeline to identical results.

use taxi_traces::matching::{CandidateIndex, MatchConfig};
use taxi_traces::od::OdAnalyzer;
use taxi_traces::roadnet::digiroad::{export_city, import_city};
use taxi_traces::roadnet::synth::{generate, OuluConfig};
use taxi_traces::traces::{simulate_fleet, FleetConfig};
use taxi_traces::weather::WeatherModel;

#[test]
fn imported_map_reproduces_pipeline_results() {
    let city = generate(&OuluConfig::default());
    let text = export_city(&city);
    let imported = import_city(&text).expect("import");

    // Same candidate index size and same matching output on a real trace.
    let idx_a = CandidateIndex::new(&city.graph, &city.elements);
    let idx_b = CandidateIndex::new(&imported.graph, &imported.elements);
    assert_eq!(idx_a.len(), idx_b.len());

    let weather = WeatherModel::new(42);
    let data = simulate_fleet(&city, &weather, &FleetConfig::tiny(3));
    let config = MatchConfig::default();
    let session = &data.sessions[0];
    let pts = session.points_in_true_order();
    let ma = taxi_traces::matching::incremental::match_trace(&city.graph, &idx_a, &pts, &config);
    let mb =
        taxi_traces::matching::incremental::match_trace(&imported.graph, &idx_b, &pts, &config);
    assert_eq!(ma.points.len(), mb.points.len());
    let same = ma
        .points
        .iter()
        .zip(&mb.points)
        .filter(|(a, b)| a.element == b.element)
        .count();
    // WKT rounds coordinates to ~1 cm; matches should be almost all equal.
    assert!(
        same * 100 >= ma.points.len() * 99,
        "{same}/{} matches agree across export/import",
        ma.points.len()
    );

    // O-D analysis sees the same named roads.
    let an_a = OdAnalyzer::from_city(&city);
    let an_b = OdAnalyzer::from_city(&imported);
    assert_eq!(an_a.endpoints().len(), an_b.endpoints().len());
    for (a, b) in an_a.endpoints().iter().zip(an_b.endpoints()) {
        assert_eq!(a.name, b.name);
        assert!((a.corridor.axis().length() - b.corridor.axis().length()).abs() < 0.5);
    }
}

#[test]
fn export_is_stable() {
    let city = generate(&OuluConfig::default());
    let a = export_city(&city);
    let b = export_city(&city);
    assert_eq!(a, b, "export is deterministic");
    // Export → import → export is a fixed point (within one round of
    // coordinate quantisation).
    let reimported = import_city(&a).expect("import");
    let c = export_city(&reimported);
    let diff = a.lines().zip(c.lines()).filter(|(x, y)| x != y).count();
    assert!(
        diff * 100 <= a.lines().count(),
        "{diff} of {} lines changed after round trip",
        a.lines().count()
    );
}
