//! Persistence integration: a simulated year survives a save/load cycle
//! bit-for-bit, and the cleaning pipeline produces identical results on the
//! reloaded store.

use taxi_traces::cleaning::{clean_session, CleaningConfig};
use taxi_traces::roadnet::synth::{generate, OuluConfig};
use taxi_traces::store::{Query, TripStore};
use taxi_traces::timebase::Timestamp;
use taxi_traces::traces::{simulate_fleet, FleetConfig, TaxiId};
use taxi_traces::weather::WeatherModel;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("taxitrace_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn save_load_preserves_everything() {
    let city = generate(&OuluConfig::default());
    let weather = WeatherModel::new(42);
    let data = simulate_fleet(&city, &weather, &FleetConfig::tiny(77));
    let mut store = TripStore::new();
    store.insert_all(data.sessions.clone()).expect("insert");

    let path = tmp_path("roundtrip_full.tts");
    store.save(&path).expect("save");
    let loaded = TripStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.stats(), store.stats());
    // Sessions compare equal including ground truth.
    for s in store.sessions() {
        let l = loaded.get(s.id).expect("session survives");
        assert_eq!(l, s);
    }

    // Cleaning on original == cleaning on reloaded.
    let config = CleaningConfig::default();
    for (a, b) in store.sessions().iter().zip(loaded.sessions()) {
        let ca = clean_session(a, &config);
        let cb = clean_session(b, &config);
        assert_eq!(ca.segments.len(), cb.segments.len());
        assert_eq!(ca.stats.rule_fires_total(), cb.stats.rule_fires_total());
    }
}

trait RuleFires {
    fn rule_fires_total(&self) -> usize;
}

impl RuleFires for taxi_traces::cleaning::CleaningStats {
    fn rule_fires_total(&self) -> usize {
        self.segmentation.rule_fires.iter().sum()
    }
}

#[test]
fn queries_work_after_reload() {
    let city = generate(&OuluConfig::default());
    let weather = WeatherModel::new(42);
    let data = simulate_fleet(&city, &weather, &FleetConfig::tiny(78));
    let mut store = TripStore::new();
    store.insert_all(data.sessions).expect("insert");

    let path = tmp_path("roundtrip_query.tts");
    store.save(&path).expect("save");
    let loaded = TripStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let q = Query::new().taxi(TaxiId(1)).min_points(10);
    assert_eq!(
        loaded.query(&q).expect("valid query").count(),
        store.query(&q).expect("valid query").count()
    );

    let t0 = Timestamp::from_secs(0);
    let t1 = Timestamp::from_secs(i64::MAX / 2);
    assert_eq!(
        loaded.in_time_range(t0, t1).count(),
        store.in_time_range(t0, t1).count()
    );

    // Spatial queries over the downtown area.
    let bbox = city.center_area;
    assert_eq!(
        loaded.points_in_bbox(&bbox).len(),
        store.points_in_bbox(&bbox).len()
    );
}
