//! Quickstart: run a reduced-volume study end to end and print the headline
//! results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use taxi_traces::core::{
    mixed_model, render_table3, render_table4, render_table5, Study, StudyConfig, Table4,
};

fn main() {
    // The whole study is a pure function of the seed. The builder
    // validates the configuration before anything runs.
    let config = StudyConfig::builder(2012)
        .scale(0.15)
        .build()
        .expect("valid study config");
    println!("Running study (seed {}, scale {}) ...", config.seed, config.fleet.scale);
    let output = Study::new(config).run().expect("study pipeline");

    println!(
        "\nSimulated {} sessions / {} route points; {} cleaned trip segments.",
        output.cleaning.sessions,
        output.cleaning.raw_points,
        output.segments.len()
    );
    println!(
        "Order repair fixed {} sessions; Table 2 rule fires: {:?}.",
        output.cleaning.sessions_order_repaired, output.cleaning.rule_fires
    );

    println!("\n=== Table 3: the O-D funnel ===");
    print!("{}", render_table3(&output));

    println!("\n=== Table 4: per-direction summaries ===");
    print!("{}", render_table4(&Table4::compute(&output)));

    println!("\n=== Table 5: traffic lights / bus stops vs cell speed ===");
    let grid = output.grid_stats(None);
    print!("{}", render_table5(&grid.table5()));

    println!("\n=== Eq. 3 mixed model (cell random intercepts) ===");
    match mixed_model(&output) {
        Ok(m) => {
            println!(
                "grand mean {:.2} km/h, sigma2_e {:.2}, sigma2_u {:.2}, {} cells",
                m.grand_mean,
                m.sigma2_e,
                m.sigma2_u,
                m.cells.len()
            );
            let lo = m.cells.first().expect("cells");
            let hi = m.cells.last().expect("cells");
            println!(
                "cell intercepts from {:+.2} km/h ({}) to {:+.2} km/h ({})",
                lo.blup, lo.cell, hi.blup, hi.cell
            );
        }
        Err(e) => println!("mixed model failed: {e}"),
    }
}
