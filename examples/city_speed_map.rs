//! City speed map: run the mixed-model analysis (Eq. 3) and render the cell
//! random-intercept predictions as an ASCII map of downtown — the textual
//! analogue of the paper's Fig. 9, with the QQ check of Fig. 7.
//!
//! ```sh
//! cargo run --release --example city_speed_map
//! ```

use std::collections::HashMap;

use taxi_traces::core::{mixed_model, mixed_model_with_features, Study, StudyConfig};
use taxi_traces::geo::CellId;

fn main() {
    let config = StudyConfig::builder(2012)
        .scale(0.2)
        .build()
        .expect("valid study config");
    let output = Study::new(config).run().expect("study pipeline");
    let m = mixed_model(&output).expect("mixed model fits");

    println!(
        "Eq. 3 fit: grand mean {:.2} km/h, sigma2_e {:.2}, sigma2_u {:.2} (lambda {:.3})",
        m.grand_mean, m.sigma2_e, m.sigma2_u, m.lambda
    );
    println!(
        "{} cells with data; intercepts {:+.1} .. {:+.1} km/h",
        m.cells.len(),
        m.cells.first().expect("cells").blup,
        m.cells.last().expect("cells").blup
    );

    // Fig. 7: QQ straightness in the bulk.
    let q25 = &m.qq[m.qq.len() / 4];
    let q75 = &m.qq[3 * m.qq.len() / 4];
    let slope = (q75.sample - q25.sample) / (q75.theoretical - q25.theoretical);
    println!("QQ quartile slope {slope:.2} (straight line ⇒ Gaussian regularisation justified)");

    // Fig. 9: the intercepts on the map.
    let by_cell: HashMap<CellId, f64> = m.cells.iter().map(|c| (c.cell, c.blup)).collect();
    println!("\nCell intercepts over downtown (200 m cells; west→east, north→south):");
    println!("  ██ ≤ -6   ▓▓ -6..-2   ░░ -2..+2   ·· +2..+6   \"  \" > +6   (km/h vs grand mean)");
    for iy in (-7..=7).rev() {
        let mut line = String::new();
        for ix in -7..=7 {
            let cell = CellId { ix, iy };
            let glyph = match by_cell.get(&cell) {
                None => "  ",
                Some(b) if *b <= -6.0 => "██",
                Some(b) if *b <= -2.0 => "▓▓",
                Some(b) if *b < 2.0 => "░░",
                Some(b) if *b < 6.0 => "··",
                Some(_) => "  ",
            };
            line.push_str(glyph);
        }
        println!("  |{line}|");
    }

    // Eq. 2 with map features as fixed effects.
    let f = mixed_model_with_features(&output).expect("feature model fits");
    println!("\nFixed map-feature effects on point speed (km/h per feature in cell):");
    for (name, coef, se) in &f.fixed_features {
        println!("  {name:<22} {coef:+.3}  (se {se:.3})");
    }
}
