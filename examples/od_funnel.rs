//! O-D funnel walkthrough: reproduce the Table 3 narrowing stage by stage
//! and compare the stage ratios with the paper's seven real taxis.
//!
//! ```sh
//! cargo run --release --example od_funnel
//! ```

use taxi_traces::core::{render_table3, Study, StudyConfig};

/// Paper Table 3 (Keskinarkaus et al., ICDE-W 2022).
const PAPER: [[usize; 5]; 7] = [
    [2409, 636, 89, 79, 65],
    [3068, 1282, 172, 156, 128],
    [1790, 447, 44, 32, 19],
    [2486, 622, 102, 93, 73],
    [2429, 616, 88, 75, 65],
    [1815, 625, 113, 108, 96],
    [4080, 1109, 162, 131, 98],
];

fn main() {
    let config = StudyConfig::builder(2012)
        .scale(0.2)
        .build()
        .expect("valid study config");
    let output = Study::new(config).run().expect("study pipeline");

    println!("=== Reproduced Table 3 (scale 0.2 of the study year) ===");
    print!("{}", render_table3(&output));

    println!("\n=== Paper Table 3 (for ratio comparison) ===");
    println!(
        "{:<5} {:>10} {:>10} {:>12} {:>12} {:>13}",
        "Car", "Segments", "Filtered", "Transitions", "WithinCentre", "PostFiltered"
    );
    for (i, row) in PAPER.iter().enumerate() {
        println!(
            "{:<5} {:>10} {:>10} {:>12} {:>12} {:>13}",
            i + 1,
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        );
    }

    // Stage ratios — the shape claim: every stage narrows, transitions are
    // a few percent of segments, and most centre transitions survive the
    // post filter.
    let (mut segs, mut trans, mut within, mut post) = (0, 0, 0, 0);
    for r in output.funnel() {
        segs += r.segments_total;
        trans += r.transitions_total;
        within += r.within_center;
        post += r.post_filtered;
    }
    let paper_segs: usize = PAPER.iter().map(|r| r[0]).sum();
    let paper_trans: usize = PAPER.iter().map(|r| r[2]).sum();
    let paper_within: usize = PAPER.iter().map(|r| r[3]).sum();
    let paper_post: usize = PAPER.iter().map(|r| r[4]).sum();

    println!("\n=== Funnel stage ratios (ours vs paper) ===");
    println!(
        "transitions / segments : {:.3} vs {:.3}",
        trans as f64 / segs as f64,
        paper_trans as f64 / paper_segs as f64
    );
    println!(
        "within centre / trans  : {:.3} vs {:.3}",
        within as f64 / trans.max(1) as f64,
        paper_within as f64 / paper_trans as f64
    );
    println!(
        "post-filter / within   : {:.3} vs {:.3}",
        post as f64 / within.max(1) as f64,
        paper_post as f64 / paper_within as f64
    );
}
