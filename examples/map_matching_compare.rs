//! Map-matcher comparison on simulated sessions with known ground truth:
//! the paper's incremental matcher (with road directions and Dijkstra gap
//! filling) versus a point-wise nearest-element baseline and an HMM/Viterbi
//! matcher.
//!
//! ```sh
//! cargo run --release --example map_matching_compare
//! ```

use std::time::Instant;

use taxi_traces::matching::{evaluate, CandidateIndex, MatchAccuracy, MatchConfig};
use taxi_traces::roadnet::synth::{generate, OuluConfig};
use taxi_traces::traces::{simulate_fleet, FleetConfig};
use taxi_traces::weather::WeatherModel;

fn main() {
    let city = generate(&OuluConfig::default());
    let weather = WeatherModel::new(42);
    let mut fleet_cfg = FleetConfig::tiny(99);
    fleet_cfg.scale = 0.03;
    let data = simulate_fleet(&city, &weather, &fleet_cfg);
    let index = CandidateIndex::new(&city.graph, &city.elements);
    let config = MatchConfig::default();

    println!(
        "{} sessions, {} route points, candidate index over {} elements\n",
        data.sessions.len(),
        data.total_points(),
        index.len()
    );

    let report = |name: &str, f: &dyn Fn(&[taxi_traces::traces::RoutePoint]) -> taxi_traces::matching::MatchedTrace| {
        let mut acc = MatchAccuracy::default();
        let start = Instant::now();
        for session in &data.sessions {
            let pts = session.points_in_true_order();
            let matched = f(&pts);
            acc.merge(&evaluate(&city.graph, &matched, &pts));
        }
        let elapsed = start.elapsed();
        println!(
            "{name:<12} element acc {:.1}%  edge acc {:.1}%  mean dist {:.2} m  ({} pts evaluated, {:.0} ms)",
            100.0 * acc.element_accuracy(),
            100.0 * acc.edge_accuracy(),
            acc.mean_distance_m,
            acc.evaluated,
            elapsed.as_secs_f64() * 1000.0
        );
    };

    report("incremental", &|pts| {
        taxi_traces::matching::incremental::match_trace(&city.graph, &index, pts, &config)
    });
    report("hmm", &|pts| {
        taxi_traces::matching::hmm::match_trace(&city.graph, &index, pts, &config)
    });
    report("nearest", &|pts| {
        taxi_traces::matching::nearest::match_trace(&city.graph, &index, pts, &config)
    });

    // Ablation: the incremental matcher without look-ahead.
    let greedy = MatchConfig { lookahead: 0, ..config };
    report("greedy (L=0)", &|pts| {
        taxi_traces::matching::incremental::match_trace(&city.graph, &index, pts, &greedy)
    });
}
