//! Cleaning forensics: inject the §IV-B error classes into a simulated
//! session stream and show how the order repair and Table 2 segmentation
//! recover the true customer trips — with ground-truth validation the
//! original study could not perform.
//!
//! ```sh
//! cargo run --release --example cleaning_forensics
//! ```

use taxi_traces::cleaning::{
    clean_session, repair_order, validate_segments, CleaningConfig,
};
use taxi_traces::roadnet::synth::{generate, OuluConfig};
use taxi_traces::traces::{simulate_fleet, FleetConfig};
use taxi_traces::weather::WeatherModel;

fn main() {
    let city = generate(&OuluConfig::default());
    let weather = WeatherModel::new(42);
    let mut fleet_cfg = FleetConfig::tiny(1234);
    fleet_cfg.scale = 0.03;
    // Make errors frequent so the demo has plenty to repair.
    fleet_cfg.corruption.p_reorder = 0.35;
    fleet_cfg.corruption.p_ts_glitch = 0.20;
    let data = simulate_fleet(&city, &weather, &fleet_cfg);

    let config = CleaningConfig::default();
    let mut repaired = 0;
    let mut order_ok = 0;
    let mut validation_totals = (0usize, 0usize, 0usize, 0usize);

    for session in &data.sessions {
        let (ordered, report) = repair_order(&session.points);
        if report.orders_differed {
            repaired += 1;
            let seqs: Vec<u32> = ordered.iter().map(|p| p.truth.seq).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            if seqs == sorted {
                order_ok += 1;
            }
        }
        let cleaned = clean_session(session, &config);
        let v = validate_segments(session, &cleaned, 0.7);
        validation_totals.0 += v.truth_legs;
        validation_totals.1 += v.recovered_legs;
        validation_totals.2 += v.segments;
        validation_totals.3 += v.matched_segments;
    }

    println!("sessions: {}", data.sessions.len());
    println!(
        "order repair: {repaired} sessions had scrambled order; {order_ok} fully recovered \
         ({:.0}%)",
        100.0 * order_ok as f64 / repaired.max(1) as f64
    );
    println!(
        "segmentation: {} true customer legs, {} recovered (recall {:.1}%)",
        validation_totals.0,
        validation_totals.1,
        100.0 * validation_totals.1 as f64 / validation_totals.0.max(1) as f64
    );
    println!(
        "              {} produced segments, {} matched a true leg (precision {:.1}%)",
        validation_totals.2,
        validation_totals.3,
        100.0 * validation_totals.3 as f64 / validation_totals.2.max(1) as f64
    );

    // Show one repaired session in detail.
    if let Some(session) = data.sessions.iter().find(|s| {
        let (_, r) = repair_order(&s.points);
        r.orders_differed
    }) {
        let (_, report) = repair_order(&session.points);
        println!("\nexample session {}:", session.id);
        println!(
            "  id-order path length  : {:.0} m",
            report.id_order_length_m
        );
        println!(
            "  ts-order path length  : {:.0} m",
            report.ts_order_length_m
        );
        println!("  chosen                : {:?} (shorter wins, §IV-B)", report.chosen);
        let cleaned = clean_session(session, &config);
        println!(
            "  segments recovered    : {} (rule fires {:?})",
            cleaned.segments.len(),
            cleaned.stats.segmentation.rule_fires
        );
    }
}
