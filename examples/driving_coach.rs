//! Driving coach: the paper's §VII prototype — post-driving analysis of
//! fused transitions with efficiency scoring, detected events and advice.
//!
//! ```sh
//! cargo run --release --example driving_coach
//! ```

use taxi_traces::core::{coach_report, CoachConfig, Study, StudyConfig};
use taxi_traces::stats::pearson;

fn main() {
    let config = StudyConfig::builder(2012)
        .scale(0.15)
        .build()
        .expect("valid study config");
    let output = Study::new(config).run().expect("study pipeline");
    let config = CoachConfig::default();

    let reports: Vec<_> = output.transitions.iter().map(|t| coach_report(t, &config)).collect();
    println!("coached {} trips\n", reports.len());

    // Fleet-level view.
    let mean_score = reports.iter().map(|r| r.eco_score).sum::<f64>() / reports.len() as f64;
    let total_idle: f64 = reports.iter().map(|r| r.idle_s).sum();
    let total_events: usize = reports.iter().map(|r| r.events.len()).sum();
    println!("fleet eco score : {mean_score:.0}/100");
    println!("fleet idle time : {:.0} min", total_idle / 60.0);
    println!("events detected : {total_events}");

    // The paper's §VI observation, quantified: low speed correlates with
    // fuel consumption (per kilometre).
    let low: Vec<f64> = output.transitions.iter().map(|t| t.low_speed_pct).collect();
    let fuel_per_km: Vec<f64> =
        output.transitions.iter().map(|t| t.fuel_ml / t.dist_km.max(0.1)).collect();
    if let Some(r) = pearson(&low, &fuel_per_km) {
        println!("corr(low-speed %, fuel/km) = {r:+.2}  (paper: 'low speed also correlates to fuel consumption')");
    }

    // Worst trip in detail.
    if let Some((t, r)) = output
        .transitions
        .iter()
        .map(|t| (t, coach_report(t, &config)))
        .min_by(|a, b| a.1.eco_score.partial_cmp(&b.1.eco_score).expect("finite scores"))
    {
        println!("\nworst trip ({}, {}):", t.pair, t.start_time);
        println!(
            "  eco score {:.0}/100 — used {:.0} ml vs ideal {:.0} ml over {:.1} km",
            r.eco_score, r.fuel_ml, r.ideal_fuel_ml, t.dist_km
        );
        for e in r.events.iter().take(6) {
            println!("  event: {e}");
        }
        for a in &r.advice {
            println!("  advice: {a}");
        }
    }
}
