#!/usr/bin/env bash
# Tier-1 verification: build, tests, strict lints on the metered crates,
# and a schema-drift check of the repro metrics surface.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p taxitrace-bench
cargo test -q --workspace

# The whole workspace must be clippy-clean.
cargo clippy -q --workspace -- -D warnings

# Static-analysis gate: determinism, panic-freedom, unsafe audit,
# metrics-name drift, atomics audit, lock discipline, workspace hygiene
# (see README §Static analysis gates).
lint_out=$(mktemp)
cargo run -q -p taxitrace-lint -- --deny --format json > "$lint_out" || {
    cat "$lint_out" >&2
    rm -f "$lint_out"
    exit 1
}
python3 - "$lint_out" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc.get("version") == 1, f"lint JSON version drifted: {doc.get('version')!r}"
assert doc.get("findings") == [], f"live findings under --deny: {doc['findings']}"
print("lint gate OK: zero findings in stable JSON")
EOF
rm -f "$lint_out"
# The concurrency rules must be wired into the gate's committed contract.
for rule in atomics-audit lock-discipline; do
    grep -q "\"rule\": \"$rule\"" crates/lint/tests/golden.json || {
        echo "verify: $rule missing from the committed lint golden file" >&2
        exit 1
    }
done
test -s crates/lint/sync.registry || {
    echo "verify: crates/lint/sync.registry is missing or empty" >&2
    exit 1
}

# Concurrency model checker: the shipped orderings must pass exhaustive
# bounded exploration, every known-bad weakening must be caught, and the
# run must be byte-for-byte deterministic at a fixed seed.
sm1=$(mktemp)
sm2=$(mktemp)
cargo run -q -p taxitrace-sync-model -- --seed 7 > "$sm1" || {
    echo "verify: sync-model checker reported a mismatch" >&2
    cat "$sm1" >&2
    exit 1
}
cargo run -q -p taxitrace-sync-model -- --seed 7 > "$sm2"
cmp -s "$sm1" "$sm2" || {
    echo "verify: sync-model output is not deterministic across runs" >&2
    diff "$sm1" "$sm2" >&2 || true
    exit 1
}
for want in \
    "PASS epoch_publish(Release, Acquire)" \
    "PASS epoch_cell(Relaxed, Relaxed)" \
    "PASS counter_merge" \
    "CAUGHT epoch_publish(Relaxed, Acquire)" \
    "CAUGHT epoch_publish(Release, Relaxed)" \
    "CAUGHT counter_merge_lost_update" \
    "6/6 checks as expected"; do
    grep -qF "$want" "$sm1" || {
        echo "verify: sync-model output missing: $want" >&2
        cat "$sm1" >&2
        exit 1
    }
done
echo "sync-model OK: $(grep -c '^PASS' "$sm1") protocols pass, $(grep -c '^CAUGHT' "$sm1") weakenings caught"
rm -f "$sm1" "$sm2"

# Optional miri smoke over the real epoch/shutdown atomics — only when
# the toolchain ships miri (CI images may; the default container skips).
if cargo miri --version > /dev/null 2>&1; then
    echo "verify: miri available — running the serve smoke"
    cargo miri test -q -p taxitrace-serve
else
    echo "verify: miri unavailable — skipping the serve miri smoke"
fi

# Metrics surface: a small run must emit schema-versioned JSON covering
# every pipeline stage, the executor and the gap-fill cache — and leave
# stdout untouched.
out=$(mktemp)
metrics=$(mktemp)
./target/release/repro --scale 0.05 --metrics json --metrics-out "$metrics" table3 \
    > "$out" 2>/dev/null
grep -q "Reproduced funnel" "$out" || {
    echo "verify: repro stdout lost its experiment output" >&2
    exit 1
}
python3 - "$metrics" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
assert m.get("schema") == 6, f"metrics JSON schema drifted: {m.get('schema')!r}"
for key in ("counters", "gauges", "histograms", "spans"):
    assert key in m, f"missing top-level key {key!r}"
counters = m["counters"]
for prefix in ("sim.", "clean.", "od.", "match.", "exec."):
    assert any(k.startswith(prefix) for k in counters), f"no {prefix}* counters"
for k in ("match.cache_hits", "match.cache_misses", "match.astar_expanded",
          "exec.shard_units"):
    assert k in counters, f"missing counter {k!r}"
assert counters["exec.shard_units"] > 0, "simulation reported zero shard units"
paths = {s["path"] for s in m["spans"]}
for p in ("study/simulate", "study/clean", "study/od", "study/match_fuse"):
    assert p in paths, f"missing span {p!r}"
print(f"metrics schema OK: {len(counters)} counters, {len(paths)} span paths")
EOF
rm -f "$out" "$metrics"

# Chaos smoke: a plan with trace faults plus a mid-run kill must (a) be
# interrupted, (b) complete via checkpoint resume inside repro, (c) leave
# a non-empty quarantine ledger visible in the budget metrics, and (d)
# still print the experiment table.
out=$(mktemp)
errs=$(mktemp)
metrics=$(mktemp)
plan=$(mktemp)
ckdir=$(mktemp -d)
cat > "$plan" <<'PLAN'
seed 9
p_teleport 0.04
p_clock_freeze 0.04
p_stuck 0.03
p_dropout 0.03
task_panic_one_in 97
error_budget 0.5
kill_after_stage clean
PLAN
./target/release/repro --scale 0.05 --chaos "$plan" --checkpoint-dir "$ckdir" \
    --metrics json --metrics-out "$metrics" table3 > "$out" 2> "$errs" || {
    echo "verify: chaos repro run failed" >&2
    cat "$errs" >&2
    exit 1
}
grep -q "Reproduced funnel" "$out" || {
    echo "verify: chaos repro lost its experiment output" >&2
    exit 1
}
grep -q "resuming from" "$errs" || {
    echo "verify: chaos kill did not trigger a checkpoint resume" >&2
    cat "$errs" >&2
    exit 1
}
grep -q "quarantined" "$errs" || {
    echo "verify: chaos run reported no quarantined records" >&2
    cat "$errs" >&2
    exit 1
}
python3 - "$metrics" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
counters = m["counters"]
assert counters.get("quarantine.total", 0) > 0, "no quarantine.total under chaos"
assert counters.get("chaos.sessions_faulted", 0) > 0, "no chaos.sessions_faulted"
assert any(k.startswith("quarantine.reason.") for k in counters), "no per-reason counters"
fractions = [k for k in m["gauges"] if k.startswith("quarantine.fraction.")]
assert fractions, "no quarantine.fraction.* budget gauges"
print(f"chaos smoke OK: {counters['quarantine.total']} quarantined, "
      f"{counters['chaos.sessions_faulted']} sessions faulted")
EOF
rm -rf "$out" "$errs" "$metrics" "$plan" "$ckdir"

# Fsck smoke: corrupt a generated store with the seeded disk-fault
# injector, then prove (a) fsck reports the damage and exits non-zero,
# (b) a --store replay completes anyway with the loss visible in the
# store.* corruption counters, (c) --repair rewrites a clean container
# that rescans with zero errors.
storedir=$(mktemp -d)
metrics=$(mktemp)
plan=$(mktemp)
store="$storedir/trips.tts"
cat > "$plan" <<'PLAN'
seed 21
disk_bit_flips 2
disk_truncate_bytes 37
PLAN
./target/release/repro --scale 0.05 store-save "$store" > /dev/null 2>&1
./target/release/repro --chaos "$plan" store-corrupt "$store" > /dev/null
if ./target/release/repro fsck "$storedir" > /dev/null 2>&1; then
    echo "verify: fsck missed injected store corruption" >&2
    exit 1
fi
./target/release/repro --scale 0.05 --store "$store" \
    --metrics json --metrics-out "$metrics" table3 > /dev/null 2>&1 || {
    echo "verify: --store replay of a corrupted store failed" >&2
    exit 1
}
python3 - "$metrics" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
counters = m["counters"]
assert counters.get("store.corrupt_records", 0) > 0, "no store.corrupt_records"
assert counters.get("store.records_total", 0) > counters.get("store.records_valid", 0), \
    "corruption not reflected in store record counters"
reasons = [k for k in counters if k.startswith("quarantine.reason.")
           and k.split(".")[-1] in ("corrupt_record", "torn_tail", "header_mismatch")]
assert reasons, "no typed storage quarantine reasons"
assert counters.get("quarantine.stage.store", 0) > 0, "no quarantine.stage.store"
print(f"fsck smoke OK: {counters['store.corrupt_records']} corrupt record(s), "
      f"reasons {sorted(r.split('.')[-1] for r in reasons)}")
EOF
./target/release/repro fsck --repair "$store" > /dev/null || {
    echo "verify: fsck --repair failed" >&2
    exit 1
}
./target/release/repro fsck "$store" > /dev/null || {
    echo "verify: repaired store still scans dirty" >&2
    exit 1
}
# The repaired container is a clean v3 file, so a replay must take the
# offset-index fast path rather than the salvage scan.
./target/release/repro --scale 0.05 --store "$store" \
    --metrics json --metrics-out "$metrics" table3 > /dev/null 2>&1 || {
    echo "verify: --store replay of the repaired store failed" >&2
    exit 1
}
python3 - "$metrics" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
counters = m["counters"]
assert counters.get("store.indexed_reads", 0) > 0, \
    "repaired v3 store was not served by the offset index"
print("indexed-read smoke OK: repaired store loaded via the v3 index")
EOF
rm -rf "$storedir" "$metrics" "$plan"

# Perf smoke: the bench-json record at 1 worker and at a forced 4-worker
# pool (oversubscribed on small hosts — the override is literal) must
# agree on every fingerprint: the study output and each simulate_matrix
# scale row. This is the thread-count-invariance contract, asserted on
# the exact artifact BENCH_pipeline.json is built from.
j1=$(mktemp)
j4=$(mktemp)
./target/release/repro --scale 0.05 --threads 1 --bench-json "$j1" table3 > /dev/null 2>&1
./target/release/repro --scale 0.05 --threads 4 --bench-json "$j4" table3 > /dev/null 2>&1
python3 - "$j1" "$j4" <<'EOF'
import json, sys

one, four = (json.load(open(p)) for p in sys.argv[1:3])
assert one["threads"] == 1 and four["threads"] == 4, \
    f"--threads not honoured: {one['threads']}, {four['threads']}"
assert one["study_fingerprint"] == four["study_fingerprint"], \
    "study output differs between 1 and 4 workers"

def by_scale(rec, expect_threads):
    rows = rec["simulate_matrix"]
    assert [r["scale"] for r in rows] == sorted(r["scale"] for r in rows), \
        "matrix rows out of scale order"
    got = {}
    for r in rows:
        got.setdefault(r["scale"], {})[r["threads"]] = r["fingerprint"]
    assert sorted(got) == [1, 10, 100], f"matrix scales drifted: {sorted(got)}"
    for scale, cells in got.items():
        assert sorted(cells) == expect_threads, \
            f"scale {scale} thread set drifted: {sorted(cells)}"
        assert len(set(cells.values())) == 1, \
            f"scale {scale} fingerprints differ across thread counts: {cells}"
    return {scale: next(iter(cells.values())) for scale, cells in got.items()}

fp1 = by_scale(one, [1])
fp4 = by_scale(four, [1, 4])
assert fp1 == fp4, f"matrix fingerprints differ between runs: {fp1} vs {fp4}"
print(f"perf smoke OK: study {one['study_fingerprint']} and "
      f"{len(four['simulate_matrix'])} matrix rows invariant across workers")
EOF
rm -f "$j1" "$j4"

# Serve smoke: start the HTTP query service on an ephemeral port, issue
# one query of each kind, and check (a) every route answers canonical
# JSON, (b) /metrics exposes the schema-versioned obs document with the
# serve.* request counters reflecting the traffic, (c) the server drains
# gracefully through --shutdown-file instead of needing kill.
servelog=$(mktemp)
shutfile=$(mktemp -u)
./target/release/repro --scale 0.05 --threads 2 \
    --shutdown-file "$shutfile" serve > "$servelog" 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 120); do
    addr=$(sed -n 's/^serving on \([0-9.:]*\).*/\1/p' "$servelog")
    [ -n "$addr" ] && break
    sleep 0.5
done
[ -n "$addr" ] || {
    echo "verify: serve never reported its address" >&2
    cat "$servelog" >&2
    exit 1
}
python3 - "$addr" <<'EOF'
import json, sys, urllib.error, urllib.request

addr = sys.argv[1]
def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=10) as r:
        return json.load(r)

for path, kind in (("/od_flow", "od_flow"), ("/cell_speed?ix=0&iy=0", "cell_speed"),
                   ("/trip?id=1", "trip_lookup"), ("/grid_stats", "grid_stats")):
    doc = get(path)
    assert doc.get("kind") == kind, f"{path} answered {doc.get('kind')!r}"

od = get("/od_flow")
assert od["rows"], "od_flow returned no rows"
grid = get("/grid_stats")
assert grid["cells"], "grid_stats returned no cells"

# An inverted window must be a typed 400, not an empty result.
try:
    get("/od_flow?from=100&to=0")
    raise AssertionError("inverted window was not rejected")
except urllib.error.HTTPError as e:
    assert e.code == 400, f"inverted window gave {e.code}"
    assert "empty time range" in json.load(e)["error"]

m = get("/metrics")
assert m.get("schema") == 6, f"serve metrics schema drifted: {m.get('schema')!r}"
counters = m["counters"]
assert counters.get("serve.requests_total", 0) >= 4, \
    f"serve.requests_total too low: {counters.get('serve.requests_total')}"
for kind in ("od_flow", "cell_speed", "trip_lookup", "grid_stats"):
    assert counters.get(f"serve.requests.{kind}", 0) >= 1, f"no serve.requests.{kind}"
assert m["gauges"].get("serve.workers") == 2.0, "serve.workers gauge wrong"
print(f"serve smoke OK: {counters['serve.requests_total']} requests over "
      f"{addr}, all four query kinds answered")
EOF
touch "$shutfile"
for _ in $(seq 1 120); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.5
done
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
grep -q "server drained and stopped" "$servelog" || {
    echo "verify: serve did not drain via --shutdown-file" >&2
    cat "$servelog" >&2
    exit 1
}
echo "serve shutdown OK: drained gracefully via --shutdown-file"
rm -f "$servelog" "$shutfile"

# Serve bench: the committed BENCH_serve.json must carry the load
# fingerprints and latency figures plus the epoch-vs-mutex contention
# comparison, and a fresh reduced run must reproduce the documented
# query-mix determinism (same seed + domain => same mix fingerprint).
sj=$(mktemp)
./target/release/repro --scale 0.05 --threads 2 --requests 200 \
    --bench-json "$sj" serve-bench 2>/dev/null
python3 - "$sj" BENCH_serve.json <<'EOF'
import json, sys

fresh, committed = (json.load(open(p)) for p in sys.argv[1:3])
for doc, label in ((fresh, "fresh"), (committed, "committed")):
    assert doc.get("schema") == 1, f"{label} BENCH_serve schema drifted"
    load = doc["load"]
    for k in ("seed", "clients", "requests", "errors", "mix_fingerprint",
              "response_fingerprint", "p50_us", "p99_us", "throughput_qps"):
        assert k in load, f"{label} load record missing {k!r}"
    assert load["errors"] == 0, f"{label} run had {load['errors']} failed requests"
    c = doc["contention"]
    for k in ("threads", "acquisitions_per_thread", "epoch_ns_per_op", "mutex_ns_per_op"):
        assert k in c, f"{label} contention record missing {k!r}"
assert fresh["load"]["requests"] == 200, "serve-bench did not honour --requests"
print(f"serve bench OK: mix {fresh['load']['mix_fingerprint']}, "
      f"epoch {fresh['contention']['epoch_ns_per_op']:.0f} ns/op vs "
      f"mutex {fresh['contention']['mutex_ns_per_op']:.0f} ns/op")
EOF
sj2=$(mktemp)
./target/release/repro --scale 0.05 --threads 2 --requests 200 \
    --bench-json "$sj2" serve-bench 2>/dev/null
python3 - "$sj" "$sj2" <<'EOF'
import json, sys

a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["load"]["mix_fingerprint"] == b["load"]["mix_fingerprint"], \
    "query mix is not deterministic across runs"
assert a["load"]["response_fingerprint"] == b["load"]["response_fingerprint"], \
    "responses are not deterministic across runs"
print("serve determinism OK: mix and response fingerprints stable across runs")
EOF
rm -f "$sj" "$sj2"

# Stream smoke: the streaming ingest must converge to the batch study
# fingerprint, a seeded mid-stream kill must resume from the stream
# cursor to the *identical* fingerprint, and the stream.* metrics must
# appear in the schema-versioned obs document.
sref=$(mktemp)
skill=$(mktemp)
serrs=$(mktemp)
smetrics=$(mktemp)
splan=$(mktemp)
sckdir=$(mktemp -d)
./target/release/repro --scale 0.05 stream > "$sref" 2>/dev/null
ref_fp=$(sed -n 's/^study fingerprint \(0x[0-9a-f]*\)$/\1/p' "$sref")
[ -n "$ref_fp" ] || {
    echo "verify: stream run printed no study fingerprint" >&2
    cat "$sref" >&2
    exit 1
}
cat > "$splan" <<'PLAN'
seed 9
stream_kill_after_records 5000
PLAN
./target/release/repro --scale 0.05 --chaos "$splan" --checkpoint-dir "$sckdir" \
    --metrics json --metrics-out "$smetrics" stream > "$skill" 2> "$serrs" || {
    echo "verify: killed stream run did not complete via resume" >&2
    cat "$serrs" >&2
    exit 1
}
grep -q "resuming from" "$serrs" || {
    echo "verify: stream kill did not trigger a cursor resume" >&2
    cat "$serrs" >&2
    exit 1
}
kill_fp=$(sed -n 's/^study fingerprint \(0x[0-9a-f]*\)$/\1/p' "$skill")
[ "$ref_fp" = "$kill_fp" ] || {
    echo "verify: killed-and-resumed stream fingerprint $kill_fp != uninterrupted $ref_fp" >&2
    exit 1
}
python3 - "$smetrics" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
assert m.get("schema") == 6, f"stream metrics schema drifted: {m.get('schema')!r}"
counters = m["counters"]
for k in ("stream.records_total", "stream.trips_closed",
          "stream.checkpoints", "stream.resumes"):
    assert counters.get(k, 0) > 0, f"missing or zero counter {k!r}"
for g in ("stream.queue_depth", "stream.watermark_lag_s"):
    assert g in m["gauges"], f"missing gauge {g!r}"
paths = {s["path"] for s in m["spans"]}
assert "study/stream" in paths, "missing study/stream span"
print(f"stream smoke OK: {counters['stream.records_total']} records, "
      f"{counters['stream.resumes']} resume(s), fingerprint converged")
EOF
rm -rf "$sref" "$skill" "$serrs" "$smetrics" "$splan" "$sckdir"

# Adversarial-ingest smoke: the untrusted-input layer must (a) round-trip
# an export byte-identically into the batch study fingerprint, (b) survive
# a seeded mutation of that export without panicking, quarantining the
# identical ledger across two runs and across --threads 1/4, and (c) keep
# the documented exit-code split: 0 success-with-quarantine, 2 I/O or
# usage error, 3 ingest error budget exceeded.
ext=$(mktemp -d)
ibj=$(mktemp)
iout1=$(mktemp)
iout2=$(mktemp)
imet1=$(mktemp)
imet2=$(mktemp)
./target/release/repro export "$ext" --scale 0.05 2>/dev/null
./target/release/repro table3 --scale 0.05 --bench-json "$ibj" >/dev/null 2>&1
batch_fp=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["study_fingerprint"])' "$ibj")
./target/release/repro ingest "$ext/traces.csv" --map "$ext/map.osmx" --scale 0.05 \
    > "$iout1" 2>/dev/null
rt_fp=$(sed -n 's/^study fingerprint \(0x[0-9a-f]*\)$/\1/p' "$iout1")
[ -n "$rt_fp" ] && [ "$batch_fp" = "$rt_fp" ] || {
    echo "verify: export -> ingest round trip fingerprint $rt_fp != batch $batch_fp" >&2
    exit 1
}
grep -q "^ingest records [0-9]* quarantined 0$" "$iout1" || {
    echo "verify: clean round trip quarantined records" >&2
    cat "$iout1" >&2
    exit 1
}

./target/release/repro mutate "$ext/traces.csv" "$ext/mutant.csv" --seed 7 > /dev/null
./target/release/repro ingest "$ext/mutant.csv" --scale 0.05 --threads 1 \
    --metrics json --metrics-out "$imet1" > "$iout1" 2>/dev/null
./target/release/repro ingest "$ext/mutant.csv" --scale 0.05 --threads 4 \
    --metrics json --metrics-out "$imet2" > "$iout2" 2>/dev/null
cmp -s "$iout1" "$iout2" || {
    echo "verify: mutant ingest output differs across --threads 1/4" >&2
    diff "$iout1" "$iout2" >&2 || true
    exit 1
}
python3 - "$imet1" "$imet2" <<'EOF'
import json, sys

a = json.load(open(sys.argv[1]))["counters"]
b = json.load(open(sys.argv[2]))["counters"]
for k in ("ingest.records_total", "ingest.records_valid",
          "ingest.quarantined_total", "ingest.sessions"):
    assert k in a, f"missing counter {k!r}"
    assert a[k] == b[k], f"{k} differs across worker counts: {a[k]} != {b[k]}"
assert a["ingest.quarantined_total"] > 0, "seed-7 mutant quarantined nothing"
ing = {k: v for k, v in a.items() if k.startswith("ingest.damaged.")}
assert ing, "no per-reason ingest.damaged.* counters"
print(f"ingest smoke OK: {a['ingest.records_total']} records, "
      f"{a['ingest.quarantined_total']} quarantined deterministically, "
      f"round trip fingerprint converged")
EOF

# Exit-code split: unreadable input is 2, a blown ingest budget is 3
# (success-with-quarantine was exit 0 above).
rc=0
./target/release/repro ingest "$ext/no-such-file.csv" --scale 0.05 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || {
    echo "verify: unreadable ingest input exited $rc, want 2" >&2
    exit 1
}
printf 'taxi_id,trip_id,point_id,t,lat,lon,x_m,y_m,speed_kmh,heading_deg,fuel_ml,trip_start_t,trip_end_t,trip_time_s,trip_dist_m,trip_fuel_ml\nnot,a,valid,row\n1,5,0,1650000000,65.05,25.50,1.0,1.0,20.0,10.0,3.0,1650000000,1650000050,50,900.0,40.0\n' > "$ext/over_budget.csv"
rc=0
./target/release/repro ingest "$ext/over_budget.csv" --scale 0.05 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || {
    echo "verify: over-budget ingest exited $rc, want 3" >&2
    exit 1
}
rm -rf "$ext" "$ibj" "$iout1" "$iout2" "$imet1" "$imet2"

echo "verify: all checks passed"
