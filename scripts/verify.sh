#!/usr/bin/env bash
# Tier-1 verification: build, tests, strict lints on the metered crates,
# and a schema-drift check of the repro metrics surface.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p taxitrace-bench
cargo test -q --workspace

# The whole workspace must be clippy-clean.
cargo clippy -q --workspace -- -D warnings

# Static-analysis gate: determinism, panic-freedom, unsafe audit,
# metrics-name drift, workspace hygiene (see README §Static analysis gates).
lint_out=$(mktemp)
cargo run -q -p taxitrace-lint -- --deny --format json > "$lint_out" || {
    cat "$lint_out" >&2
    rm -f "$lint_out"
    exit 1
}
rm -f "$lint_out"

# Metrics surface: a small run must emit schema-versioned JSON covering
# every pipeline stage, the executor and the gap-fill cache — and leave
# stdout untouched.
out=$(mktemp)
metrics=$(mktemp)
./target/release/repro --scale 0.05 --metrics json --metrics-out "$metrics" table3 \
    > "$out" 2>/dev/null
grep -q "Reproduced funnel" "$out" || {
    echo "verify: repro stdout lost its experiment output" >&2
    exit 1
}
python3 - "$metrics" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
assert m.get("schema") == 1, f"metrics JSON schema drifted: {m.get('schema')!r}"
for key in ("counters", "gauges", "histograms", "spans"):
    assert key in m, f"missing top-level key {key!r}"
counters = m["counters"]
for prefix in ("sim.", "clean.", "od.", "match.", "exec."):
    assert any(k.startswith(prefix) for k in counters), f"no {prefix}* counters"
for k in ("match.cache_hits", "match.cache_misses", "match.astar_expanded"):
    assert k in counters, f"missing counter {k!r}"
paths = {s["path"] for s in m["spans"]}
for p in ("study/simulate", "study/clean", "study/od", "study/match_fuse"):
    assert p in paths, f"missing span {p!r}"
print(f"metrics schema OK: {len(counters)} counters, {len(paths)} span paths")
EOF
rm -f "$out" "$metrics"

echo "verify: all checks passed"
